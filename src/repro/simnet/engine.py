"""Discrete-event simulation kernel.

A minimal, deterministic, generator-coroutine engine in the style of
SimPy, purpose-built for this reproduction (SimPy itself is not available
offline, and we need far fewer features than it offers):

* :class:`Engine` — binary-heap event queue with deterministic
  tie-breaking ``(time, seq)``; no wall-clock anywhere.
* :class:`Process` — a Python generator that ``yield``s waitables
  (:class:`Timeout`, :class:`Event`, or another :class:`Process`) and is
  resumed with the waitable's value — or has an exception thrown into it
  when the waitable fails (how simulated node crashes propagate).
* :class:`Event` — one-shot synchronisation cell with ``succeed`` /
  ``fail``.

Example::

    eng = Engine()

    def worker(eng):
        yield Timeout(1.5)
        return eng.now

    p = eng.spawn(worker(eng))
    eng.run()
    assert p.value == 1.5
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from ..core.errors import SimulationError


class Interrupted(Exception):
    """Thrown into a process whose wait was cancelled (e.g. host died)."""


class Timeout:
    """Waitable: resume the process after ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        self.delay = delay


class Event:
    """One-shot event: processes wait on it; someone succeeds/fails it."""

    __slots__ = ("_engine", "_done", "_value", "_exc", "_waiters", "name")

    def __init__(self, engine: "Engine", name: str = "") -> None:
        self._engine = engine
        self._done = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._waiters: List["Process"] = []
        self.name = name

    @property
    def triggered(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> None:
        if self._done:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._done = True
        self._value = value
        self._flush()

    def fail(self, exc: BaseException) -> None:
        if self._done:
            raise SimulationError(f"event {self.name!r} already triggered")
        self._done = True
        self._exc = exc
        self._flush()

    def _flush(self) -> None:
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            if self._exc is not None:
                self._engine._schedule_throw(proc, self._exc)
            else:
                self._engine._schedule_resume(proc, self._value)

    def _add_waiter(self, proc: "Process") -> None:
        if self._done:
            if self._exc is not None:
                self._engine._schedule_throw(proc, self._exc)
            else:
                self._engine._schedule_resume(proc, self._value)
        else:
            self._waiters.append(proc)

    def _discard_waiter(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass


class Process:
    """A running generator coroutine inside the engine."""

    __slots__ = ("engine", "gen", "name", "done", "value", "exc",
                 "_completion", "_waiting_on", "_timeout_seq")

    def __init__(self, engine: "Engine", gen: Generator, name: str) -> None:
        self.engine = engine
        self.gen = gen
        self.name = name
        self.done = False
        self.value: Any = None
        self.exc: Optional[BaseException] = None
        self._completion: Optional[Event] = None
        self._waiting_on: Optional[Event] = None
        self._timeout_seq: Optional[int] = None  # pending Timeout identity

    @property
    def completion(self) -> Event:
        """Event triggered when this process returns (value = return value)."""
        if self._completion is None:
            self._completion = Event(self.engine, name=f"done:{self.name}")
            if self.done:
                if self.exc is not None:
                    self._completion.fail(self.exc)
                else:
                    self._completion.succeed(self.value)
        return self._completion

    def interrupt(self, exc: Optional[BaseException] = None) -> None:
        """Cancel this process's current wait and throw into it now."""
        if self.done:
            return
        if exc is None:
            exc = Interrupted(f"{self.name} interrupted")
        # Detach from whatever it is waiting on so it is not resumed twice.
        if self._waiting_on is not None:
            self._waiting_on._discard_waiter(self)
            self._waiting_on = None
        if self._timeout_seq is not None:
            self.engine._cancel_timeout(self._timeout_seq)
            self._timeout_seq = None
        self.engine._schedule_throw(self, exc)

    def kill(self) -> None:
        """Terminate the process silently (a dead node's code just stops)."""
        if self.done:
            return
        if self._waiting_on is not None:
            self._waiting_on._discard_waiter(self)
            self._waiting_on = None
        if self._timeout_seq is not None:
            self.engine._cancel_timeout(self._timeout_seq)
            self._timeout_seq = None
        self.done = True
        self.gen.close()
        # A killed process never completes its completion event: anyone
        # waiting on it must be interrupted separately by the killer.


class Engine:
    """The simulation kernel.

    ``tracer`` is the structured event recorder simulation code emits
    into (see :mod:`repro.core.tracing`); it defaults to the shared
    no-op recorder.  :meth:`trace` stamps events with simulated time, so
    a simulated run's timeline is directly comparable with a real one.
    """

    def __init__(self, tracer=None) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._cancelled: set[int] = set()
        if tracer is None:
            from ..core.tracing import NULL_TRACER
            tracer = NULL_TRACER
        self.tracer = tracer

    def trace(self, type_: str, node: str, **kwargs) -> None:
        """Emit one structured event stamped with simulated time."""
        if self.tracer.enabled:
            kwargs.setdefault("t", self.now)
            self.tracer.emit(type_, node, **kwargs)

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------

    def call_at(self, when: float, fn: Callable[[], None]) -> int:
        """Schedule ``fn()`` at absolute simulated time ``when``.

        Returns a token usable with :meth:`_cancel_timeout`.
        """
        if when < self.now - 1e-12:
            raise SimulationError(f"cannot schedule in the past: {when} < {self.now}")
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, fn))
        return self._seq

    def call_after(self, delay: float, fn: Callable[[], None]) -> int:
        return self.call_at(self.now + delay, fn)

    def _cancel_timeout(self, seq: int) -> None:
        """Lazily cancel a scheduled callback by its token.

        The heap entry stays in place (removing from a binary heap is
        O(n)) and is skipped when popped.  When cancellations outnumber
        half the queue, the heap is compacted in one O(n) pass so a
        cancel-heavy workload — or a :meth:`run` stopped at ``until``
        before the cancelled entries' times — cannot grow ``_cancelled``
        without bound.
        """
        self._cancelled.add(seq)
        if len(self._cancelled) > len(self._heap) // 2:
            self._heap = [
                entry for entry in self._heap if entry[1] not in self._cancelled
            ]
            heapq.heapify(self._heap)
            self._cancelled.clear()

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    # ------------------------------------------------------------------
    # Processes
    # ------------------------------------------------------------------

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        proc = Process(self, gen, name)
        self._schedule_resume(proc, None)
        return proc

    def _schedule_resume(self, proc: Process, value: Any) -> None:
        self.call_at(self.now, lambda: self._step(proc, value, None))

    def _schedule_throw(self, proc: Process, exc: BaseException) -> None:
        self.call_at(self.now, lambda: self._step(proc, None, exc))

    def _step(self, proc: Process, value: Any, exc: Optional[BaseException]) -> None:
        if proc.done:
            return
        proc._waiting_on = None
        proc._timeout_seq = None
        try:
            if exc is not None:
                target = proc.gen.throw(exc)
            else:
                target = proc.gen.send(value)
        except StopIteration as stop:
            proc.done = True
            proc.value = stop.value
            if proc._completion is not None:
                proc._completion.succeed(stop.value)
            return
        except Interrupted:
            # Interrupt not caught by the process: it dies quietly.
            proc.done = True
            return
        except Exception as err:  # noqa: BLE001 - propagate to completion
            proc.done = True
            proc.exc = err
            if proc._completion is not None:
                proc._completion.fail(err)
            else:
                raise SimulationError(
                    f"process {proc.name!r} raised with no-one waiting: {err!r}"
                ) from err
            return
        self._wait_on(proc, target)

    def _wait_on(self, proc: Process, target: Any) -> None:
        if isinstance(target, Timeout):
            proc._timeout_seq = self.call_after(
                target.delay, lambda: self._resume_if_pending(proc)
            )
        elif isinstance(target, Event):
            proc._waiting_on = target
            target._add_waiter(proc)
        elif isinstance(target, Process):
            ev = target.completion
            proc._waiting_on = ev
            ev._add_waiter(proc)
        else:
            raise SimulationError(
                f"process {proc.name!r} yielded non-waitable {target!r}"
            )

    def _resume_if_pending(self, proc: Process) -> None:
        if not proc.done:
            self._step(proc, None, None)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains (or simulated time passes ``until``).

        Returns the final simulated time.
        """
        while self._heap:
            when, seq, fn = self._heap[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                continue
            if when < self.now - 1e-9:
                raise SimulationError("time went backwards")
            self.now = max(self.now, when)
            fn()
        return self.now

    @property
    def pending_events(self) -> int:
        # Every cancelled seq still sits in the heap exactly once (the
        # compaction in _cancel_timeout and the pop in run() both keep the
        # two structures in sync), so this is O(1) instead of a scan.
        return len(self._heap) - len(self._cancelled)
