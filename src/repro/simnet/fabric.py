"""The simulated network fabric: fluid streams over a topology.

This is the bridge between the DES engine and the max–min solver.  A
:class:`Stream` is a fluid transfer of ``length`` bytes between hosts; the
fabric recomputes all stream rates whenever the flow set changes and
schedules the next *rate-changing moment* (a completion, a threshold
crossing someone subscribed to, or a relay backlog running dry).

Pipelining is modelled with **chain coupling**: a stream may declare a
:class:`Supply` — typically the receiving side of the *previous* hop —
and can never deliver bytes its supply has not produced.  While the
relay's backlog is non-empty the stream runs at its own fair rate; once
it catches up it is rate-capped to the supply, exactly the steady state
of a store-and-forward pipeline.

Semantics of offsets: every stream moves the absolute byte range
``[offset0, offset0 + length)`` of the broadcast; ``head`` is the
absolute position reached so far.  Recovery after a node failure opens a
new stream whose ``offset0`` equals the replacement neighbour's position,
so replayed bytes are accounted for naturally.
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..core.errors import KascadeError, SimulationError
from ..core.perfstats import get_stats
from ..topology.graph import Network
from .engine import Engine, Event
from .flows import FlowSpec, MaxMinProblem

#: Byte tolerance: transfers are gigabytes, half a byte is "done".
_BYTE_EPS = 0.5
#: Relative rate tolerance for coupling convergence.
_RATE_TOL = 1e-6


class HostDied(KascadeError):
    """A stream endpoint host was killed by failure injection."""

    def __init__(self, host: str) -> None:
        super().__init__(f"host {host} died")
        self.host = host


class StreamCancelled(KascadeError):
    """The stream was cancelled while someone was waiting on it."""


class Supply:
    """Upstream data availability for chain coupling.

    ``available()`` is the absolute stream offset produced so far;
    ``rate()`` its current growth rate.  The default implementation is a
    constant (infinite) source — the head of a pipeline reading from RAM.
    """

    def available(self) -> float:
        return math.inf

    def rate(self) -> float:
        return math.inf


class FixedSupply(Supply):
    """A source with everything up to ``limit_bytes`` already available
    (e.g. a head node that has finished reading its file)."""

    def __init__(self, limit_bytes: float) -> None:
        self._limit = limit_bytes

    def available(self) -> float:
        return self._limit

    def rate(self) -> float:
        return 0.0


class StreamSupply(Supply):
    """Availability tracked from another stream's receiving side.

    Re-pointable: when a node's inbound stream is replaced after a
    failure, calling :meth:`attach` switches the supply to the new stream
    while freezing the bytes already received."""

    def __init__(self, stream: Optional["Stream"] = None) -> None:
        self._stream = stream
        self._frozen = 0.0 if stream is None else None
        self._unbounded = False

    def attach(self, stream: Optional["Stream"]) -> None:
        fabric = self._stream.fabric if self._stream is not None else None
        if self._stream is not None:
            self._frozen = max(self._frozen or 0.0, self._stream.head)
        self._stream = stream
        if stream is not None:
            fabric = stream.fabric
        # Re-pointing a supply changes the coupling graph: anything
        # chain-coupled to this node must be re-rated *now*, not at the
        # next unrelated fabric event.  The dependency map and every
        # backlog-based wake time are stale too — rebuild wholesale (rare:
        # this only happens on failure recovery).
        if fabric is not None:
            fabric._wake_all = True
            fabric._problem_token = None  # coupling edges moved: re-index
            fabric._on_change()

    def mark_unbounded(self) -> None:
        """Turn this supply into an infinite one (e.g. the node became
        the pipeline tail: it consumes into its sink, no backpressure)."""
        if self._unbounded:
            return
        self._unbounded = True
        fabric = self._stream.fabric if self._stream is not None else None
        if fabric is not None:
            fabric._wake_all = True
            fabric._on_change()

    def available(self) -> float:
        if self._unbounded:
            return math.inf
        if self._stream is not None:
            return self._stream.head
        return self._frozen if self._frozen is not None else 0.0

    def rate(self) -> float:
        if self._unbounded:
            return math.inf
        if self._stream is None or not self._stream.active:
            return 0.0
        return self._stream.effective_rate


class Stream:
    """A fluid byte transfer between one source host and 1..n destinations."""

    def __init__(
        self,
        fabric: "Fabric",
        key: Hashable,
        src: str,
        dsts: Tuple[str, ...],
        offset0: float,
        length: float,
        *,
        supply: Optional[Supply],
        depth: int,
        limit: float,
        copy_weight: float,
        disk_weight: float,
        bp_supply: Optional[Supply] = None,
        bp_capacity: float = math.inf,
    ) -> None:
        self.fabric = fabric
        self.key = key
        self.src = src
        self.dsts = dsts
        self.offset0 = offset0
        self.length = length
        self.supply = supply
        self.depth = depth
        self.ext_limit = limit
        self.copy_weight = copy_weight
        self.disk_weight = disk_weight
        #: Bounded-buffer backpressure: the stream may not run more than
        #: ``bp_capacity`` bytes ahead of ``bp_supply.available()`` (the
        #: receiver's consumption/forwarding position).  At the bound it
        #: is rate-capped to the consumer — how finite socket and ring
        #: buffers throttle a store-and-forward pipeline.
        self.bp_supply = bp_supply
        self.bp_capacity = bp_capacity

        self.delivered = 0.0
        self.rate = 0.0              # solver rate before coupling
        self.effective_rate = 0.0    # after coupling (what actually flows)
        self.constraints_version = 0  # bumped when constraints rebuild
        #: Wake-heap bookkeeping: entries pushed for this stream carry the
        #: stamp current at push time; a stamp bump invalidates them all.
        #: ``_wake_rate`` is the effective rate those entries assumed.
        self._wake_stamp = 0
        self._wake_rate = 0.0
        #: Why this stream runs at its current rate: "limit",
        #: ("constraint", key), "chain-coupled", "backpressure",
        #: "unbounded", or None before the first solve.
        self.binding: object = None
        self._cap_source: Optional[str] = None
        self.done = False
        self.failed: Optional[BaseException] = None
        #: Plain attribute (``not done and failed is None``), maintained by
        #: ``_finish``: it is read millions of times per run and a property
        #: was a measurable slice of the solve loop.
        self.active = True
        self.completed: Event = fabric.engine.event(name=f"stream:{key}")
        self._thresholds: List[Tuple[float, Event]] = []  # (abs offset, ev)
        self._constraints: Tuple[Tuple[Hashable, float], ...] = ()
        self._rebuild_constraints()

    # ------------------------------------------------------------------

    @property
    def head(self) -> float:
        """Absolute stream offset reached (offset0 + delivered).

        Reads integrate pending progress first, so positions observed
        between fabric events (e.g. by a controller waking from a plain
        timeout) are current, not last-event values.
        """
        fab = self.fabric
        if self.active and fab.engine.now > fab._last_update:
            fab._advance()
        return self.offset0 + self.delivered

    @property
    def remaining(self) -> float:
        return max(0.0, self.length - self.delivered)

    def when_delivered(self, abs_offset: float) -> Event:
        """Event fired when ``head`` reaches ``abs_offset``."""
        ev = self.fabric.engine.event(name=f"thresh:{self.key}@{abs_offset}")
        if not self.active:
            if self.failed is not None:
                ev.fail(self.failed)
            elif self.head >= abs_offset - _BYTE_EPS:
                ev.succeed(self.head)
            else:
                ev.fail(StreamCancelled(f"stream {self.key} already finished"))
            return ev
        if self.head >= abs_offset - _BYTE_EPS:
            ev.succeed(self.head)
        else:
            self._thresholds.append((abs_offset, ev))
            self.fabric._dirty_wake.add(self)
            self.fabric._on_change()
        return ev

    def set_limit(self, limit: float) -> None:
        """Change the external rate cap (e.g. throttling mid-transfer)."""
        self.ext_limit = limit
        self.fabric._on_change()

    def cancel(self) -> None:
        """Stop the transfer; pending waiters get :class:`StreamCancelled`."""
        if not self.active:
            return
        self._finish(failure=StreamCancelled(f"stream {self.key} cancelled"))

    def fail(self, exc: BaseException) -> None:
        """Terminate the transfer exceptionally: waiters receive ``exc``.

        Used by controllers that abandon a transfer for their own reasons
        (e.g. excluding a too-slow peer) and need the waiting process to
        distinguish that from a plain cancellation.
        """
        if not self.active:
            return
        self._finish(failure=exc)

    def remove_dst(self, host: str) -> None:
        """Drop one multicast destination (its host died)."""
        if host not in self.dsts:
            return
        self.dsts = tuple(d for d in self.dsts if d != host)
        if not self.dsts:
            self._finish(failure=HostDied(host))
            return
        self._rebuild_constraints()
        self.fabric._on_change()

    # ------------------------------------------------------------------
    # Internal
    # ------------------------------------------------------------------

    def _rebuild_constraints(self) -> None:
        net = self.fabric.network
        parts: Dict[Hashable, float] = {}
        link_ids: Set[int] = set()
        for dst in self.dsts:
            for link in net.route(self.src, dst):
                if link.link_id not in link_ids:
                    link_ids.add(link.link_id)
                    parts[("link", link.link_id)] = 1.0
        src_host = net.host(self.src)
        if math.isfinite(src_host.copy_bw) and self.copy_weight > 0:
            parts[("copy", self.src)] = self.copy_weight
        for dst in self.dsts:
            dst_host = net.host(dst)
            if math.isfinite(dst_host.copy_bw) and self.copy_weight > 0:
                parts[("copy", dst)] = self.copy_weight
            if dst_host.disk is not None and self.disk_weight > 0:
                parts[("disk", dst)] = self.disk_weight
        self._constraints = tuple(parts.items())
        self.constraints_version += 1

    def _finish(self, failure: Optional[BaseException] = None) -> None:
        if not self.active:
            return
        # Integrate progress up to this instant: a cancelled/failed stream
        # must freeze at its true position, not its last-event snapshot.
        self.fabric._advance()
        self.active = False
        # A finished stream moves no more bytes; anyone coupled to it must
        # see a zero supply rate, not the last solved value.  Streams
        # chain-coupled to this one have wake-heap entries computed with
        # the old supply rate — invalidate them.
        self.rate = 0.0
        self.effective_rate = 0.0
        consumers = self.fabric._deps.get(self)
        if consumers:
            self.fabric._dirty_wake.update(consumers)
        if failure is None:
            self.done = True
            self.delivered = self.length
            self.completed.succeed(self)
            for off, ev in self._thresholds:
                if self.head >= off - _BYTE_EPS:
                    ev.succeed(self.head)
                else:  # pragma: no cover - thresholds beyond length
                    ev.fail(StreamCancelled(f"stream {self.key} ended early"))
        else:
            self.failed = failure
            self.completed.fail(failure)
            for _off, ev in self._thresholds:
                ev.fail(failure)
        self._thresholds.clear()
        self.fabric._remove(self)


class Fabric:
    """Manages active streams over one topology and one engine."""

    def __init__(self, engine: Engine, network: Network) -> None:
        self.engine = engine
        self.network = network
        self.streams: List[Stream] = []
        self.dead_hosts: Set[str] = set()
        self._last_update = engine.now
        self._wake_token: Optional[int] = None
        self._next_key = 0
        self._in_recompute = False
        self._recompute_pending = False
        self._problem: Optional[MaxMinProblem] = None
        self._problem_token: Optional[tuple] = None
        self._token_set: Set[tuple] = set()
        self._ordered: List[Stream] = []   # actives sorted by (depth, key)
        self._has_bp = False
        #: Base-solve memo: limits signature -> (rates, causes).  Between
        #: structural changes the fixpoint walks the same handful of limit
        #: vectors every recompute; hitting here skips the solver entirely.
        self._solve_memo: Dict[tuple, tuple] = {}
        #: Constraint capacities are fixed for a fabric's lifetime (hosts
        #: and links are stamped before the run); resolved once per key.
        self._cap_cache: Dict[Hashable, float] = {}
        #: Wake schedule: a heap of ``(abs_time, seq, stamp, stream)``
        #: candidates, lazily invalidated by per-stream stamp bumps.
        self._wake_heap: List[tuple] = []
        self._wake_seq = 0
        self._wake_all = True
        self._dirty_wake: Set[Stream] = set()
        #: Coupling dependencies: supply stream -> streams rate-capped by
        #: it.  Rebuilt whenever the active set is re-indexed.
        self._deps: Dict[Stream, List[Stream]] = {}
        #: Called with the fabric after every re-rating (tracing hooks).
        self.observers: List = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def open_stream(
        self,
        src: str,
        dst: str | Sequence[str],
        length: float,
        *,
        offset0: float = 0.0,
        supply: Optional[Supply] = None,
        depth: int = 0,
        limit: float = math.inf,
        copy_weight: float = 1.0,
        disk_weight: float = 0.0,
        tcp_window: Optional[float] = None,
        bp_supply: Optional[Supply] = None,
        bp_capacity: float = math.inf,
    ) -> Stream:
        """Start a fluid transfer; returns the live :class:`Stream`.

        ``tcp_window`` adds a latency-derived rate cap ``window / RTT`` —
        how long-fat networks throttle a single TCP connection (§IV-E).
        """
        dsts = (dst,) if isinstance(dst, str) else tuple(dst)
        if length < 0:
            raise SimulationError(f"negative stream length {length}")
        if src in self.dead_hosts:
            raise HostDied(src)
        for d in dsts:
            if d in self.dead_hosts:
                raise HostDied(d)
        if tcp_window is not None:
            worst_rtt = max(self.network.rtt(src, d) for d in dsts)
            if worst_rtt > 0:
                limit = min(limit, tcp_window / worst_rtt)
        self._next_key += 1
        stream = Stream(
            self, self._next_key, src, dsts, offset0, length,
            supply=supply, depth=depth, limit=limit,
            copy_weight=copy_weight, disk_weight=disk_weight,
            bp_supply=bp_supply, bp_capacity=bp_capacity,
        )
        self.streams.append(stream)
        if length <= _BYTE_EPS:
            stream._finish()
        else:
            self._on_change()
        return stream

    def kill_host(self, host: str) -> None:
        """Failure injection: the host dies now; its streams fail."""
        if host in self.dead_hosts:
            return
        self.dead_hosts.add(host)
        self._advance()
        for stream in list(self.streams):
            if not stream.active:
                continue
            if stream.src == host:
                stream._finish(failure=HostDied(host))
            elif host in stream.dsts:
                if len(stream.dsts) > 1:
                    stream.remove_dst(host)
                else:
                    stream._finish(failure=HostDied(host))
        self._on_change()

    def is_dead(self, host: str) -> bool:
        """Whether failure injection has already killed ``host``."""
        return host in self.dead_hosts

    # ------------------------------------------------------------------
    # Rate computation
    # ------------------------------------------------------------------

    def _remove(self, stream: Stream) -> None:
        try:
            self.streams.remove(stream)
        except ValueError:
            pass
        self._on_change()

    def _on_change(self) -> None:
        """Request a re-rating.

        Changes are *batched per simulation instant*: the first change
        schedules one recompute callback at the current time; further
        changes in the same instant (a burst of stream opens at startup,
        a mass failure) fold into it.  Deliveries stay correct because
        every position read integrates pending progress first.
        """
        if self._in_recompute:
            return
        if self._recompute_pending:
            return
        self._recompute_pending = True
        self.engine.call_at(self.engine.now, self._run_pending_recompute)

    def _run_pending_recompute(self) -> None:
        if not self._recompute_pending:
            return  # already settled synchronously
        self._recompute_pending = False
        self._recompute()

    def settle(self) -> None:
        """Apply any pending re-rating immediately.

        Stream rates settle at the next engine step; call this to inspect
        ``effective_rate`` synchronously after changing the flow set.
        """
        self._run_pending_recompute()

    def _advance(self) -> None:
        """Integrate deliveries since the last update at current rates."""
        now = self.engine.now
        dt = now - self._last_update
        if dt > 0:
            for stream in self.streams:
                if stream.active and stream.effective_rate > 0:
                    stream.delivered = min(
                        stream.length,
                        stream.delivered + stream.effective_rate * dt,
                    )
        self._last_update = now

    def _capacity_of(self, ckey: Hashable) -> float:
        cap = self._cap_cache.get(ckey)
        if cap is None:
            kind, ident = ckey
            net = self.network
            if kind == "link":
                cap = net.links[ident].capacity
            elif kind == "copy":
                cap = net.host(ident).copy_bw
            elif kind == "disk":
                disk = net.host(ident).disk
                cap = disk.write_bw * disk.seq_efficiency
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown constraint kind {kind!r}")
            self._cap_cache[ckey] = cap
        return cap

    def _capacities(self) -> Dict[Hashable, float]:
        caps: Dict[Hashable, float] = {}
        cap_of = self._capacity_of
        for stream in self.streams:
            if not stream.active:
                continue
            for ckey, _w in stream._constraints:
                if ckey not in caps:
                    caps[ckey] = cap_of(ckey)
        return caps

    def _reindex(self, active: List[Stream], token: tuple) -> bool:
        """Bring the cached problem in line with the active-stream set.

        The common transitions — streams completing, streams opening —
        are applied incrementally to the live :class:`MaxMinProblem`;
        anything else (a surviving stream's constraints changed) falls
        back to a full re-index.  Returns whether a full rebuild ran.
        """
        old = self._token_set
        new = set(token)
        problem = self._problem
        if problem is not None:
            n_flows = len(problem.flows)
            if n_flows > 64 and problem.n_active * 2 < n_flows:
                problem = None  # tombstones dominate: compact via rebuild
        rebuild = True
        if problem is not None:
            if new <= old:
                for key, _version in old - new:
                    problem.deactivate(key)
                rebuild = False
            elif old <= new:
                added = new - old
                caps = problem.capacities
                for s in active:
                    if (s.key, s.constraints_version) not in added:
                        continue
                    for ckey, _w in s._constraints:
                        if ckey not in caps:
                            caps[ckey] = self._capacity_of(ckey)
                    problem.add_flow(
                        FlowSpec(s.key, s._constraints, s.ext_limit)
                    )
                rebuild = False
        if rebuild:
            specs = [
                FlowSpec(s.key, s._constraints, s.ext_limit) for s in active
            ]
            self._problem = MaxMinProblem(specs, self._capacities())
        self._problem_token = token
        self._token_set = new
        self._ordered = sorted(active, key=lambda s: (s.depth, s.key))
        self._has_bp = any(s.bp_supply is not None for s in active)
        self._solve_memo.clear()
        deps: Dict[Stream, List[Stream]] = {}
        for s in active:
            for sup in (s.supply, s.bp_supply):
                if isinstance(sup, StreamSupply):
                    src = sup._stream
                    if src is not None:
                        deps.setdefault(src, []).append(s)
        self._deps = deps
        return rebuild

    def _solve(self) -> None:
        """Solve max-min rates and apply chain coupling to a fixpoint."""
        active = [s for s in self.streams if s.active]
        if not active:
            return
        # The membership index is expensive to build and invariant while
        # the active-stream set (and each stream's constraints) is; keep
        # the indexed problem live across recomputes and apply membership
        # changes incrementally.  Capacities are stable for the lifetime
        # of a run (hosts are stamped before it starts).
        token = tuple((s.key, s.constraints_version) for s in active)
        rebuild = False
        if token != self._problem_token:
            rebuild = self._reindex(active, token)
        get_stats().solver_solved(full_rebuild=rebuild)
        ordered = self._ordered
        problem = self._problem
        memo = self._solve_memo
        limits = {s.key: s.ext_limit for s in active}
        has_bp = self._has_bp
        causes: Dict[Hashable, object] = {}
        for _iteration in range(12):
            sig = tuple(limits[s.key] for s in ordered)
            hit = memo.get(sig)
            if hit is None:
                rates, causes = problem.solve_explained(limits)
                if len(memo) >= 64:
                    memo.clear()
                memo[sig] = (rates, causes)
            else:
                rates, causes = hit
            changed = False
            # Forward pass: chain (supply) coupling, shallow to deep.
            for s in ordered:
                r = rates[s.key]
                cap = math.inf
                s._cap_source = None
                supply = s.supply
                if supply is not None:
                    backlog = (
                        supply.available() - s.offset0 - s.delivered
                    )
                    if backlog <= _BYTE_EPS:
                        cap = supply.rate()
                s.rate = r
                s.effective_rate = min(r, cap)
                if cap < r:
                    s._cap_source = "chain-coupled"
                new_limit = min(s.ext_limit, cap)
                old = limits[s.key]
                if new_limit != old and not _close(new_limit, old):
                    limits[s.key] = new_limit
                    changed = True
            if has_bp:
                # Backward pass: bounded-buffer backpressure, deep to
                # shallow, so one sweep propagates a downstream stall all
                # the way up the chain.
                for s in reversed(ordered):
                    if s.bp_supply is None:
                        continue
                    room = (
                        s.bp_supply.available() + s.bp_capacity - s.head
                    )
                    if room <= _BYTE_EPS:
                        cap = s.bp_supply.rate()
                        if s.effective_rate > cap:
                            s.effective_rate = cap
                            s._cap_source = "backpressure"
                        old = limits[s.key]
                        new_limit = min(old, cap)
                        if new_limit != old and not _close(new_limit, old):
                            limits[s.key] = new_limit
                            changed = True
            if not changed:
                break
        # Bottleneck attribution for observability: what holds each
        # stream at its current rate?
        for s in ordered:
            s.binding = s._cap_source or causes.get(s.key)

    def _push_wake(self, s: Stream, now: float) -> None:
        """(Re)compute the wake-time candidates for one stream.

        Candidates are *absolute* simulation times — valid for as long as
        the rates they were computed from hold, however many unrelated
        recomputes happen in between.  Bumping the stream's stamp
        invalidates everything pushed before."""
        heap = self._wake_heap
        s._wake_stamp = stamp = s._wake_stamp + 1
        s._wake_rate = r = s.effective_rate
        head = s.offset0 + s.delivered
        seq = self._wake_seq
        if r > 0:
            seq += 1
            heappush(heap, (now + (s.length - s.delivered) / r, seq, stamp, s))
            for off, _ev in s._thresholds:
                gap = off - head
                if gap > 0:
                    seq += 1
                    heappush(heap, (now + gap / r, seq, stamp, s))
        supply = s.supply
        if supply is not None:
            srate = supply.rate()
            backlog = supply.available() - head
            if backlog > _BYTE_EPS and r > srate + 1e-12:
                seq += 1
                heappush(heap, (now + backlog / (r - srate), seq, stamp, s))
        bp = s.bp_supply
        if bp is not None:
            crate = bp.rate()
            room = bp.available() + s.bp_capacity - head
            if room > _BYTE_EPS and r > crate + 1e-12:
                seq += 1
                heappush(heap, (now + room / (r - crate), seq, stamp, s))
        self._wake_seq = seq

    def _recompute(self) -> None:
        self._in_recompute = True
        try:
            self._advance()
            self._fire_due()
            self._solve()
            self._schedule_wake()
        finally:
            self._in_recompute = False
        for observer in self.observers:
            observer(self)

    def _fire_due(self) -> None:
        finished: Optional[List[Stream]] = None
        for stream in self.streams:
            if not stream.active:
                continue
            delivered = stream.delivered
            thresholds = stream._thresholds
            if thresholds:
                head = stream.offset0 + delivered
                due = [
                    pair for pair in thresholds if head >= pair[0] - _BYTE_EPS
                ]
                if due:
                    stream._thresholds = [
                        pair for pair in thresholds if pair not in due
                    ]
                    for _off, ev in due:
                        ev.succeed(head)
                    # The fired thresholds' heap entries are now stale but
                    # carry a live stamp; re-stamp so they cannot pin the
                    # wake schedule to the past.
                    self._dirty_wake.add(stream)
            if stream.length - delivered <= _BYTE_EPS:
                if finished is None:
                    finished = []
                finished.append(stream)
        if finished:
            # Deferred: _finish removes the stream from self.streams.
            for stream in finished:
                stream._finish()

    def _schedule_wake(self) -> None:
        if self._wake_token is not None:
            self.engine._cancel_timeout(self._wake_token)
            self._wake_token = None
        now = self.engine.now
        heap = self._wake_heap
        dirty = self._dirty_wake
        if self._wake_all:
            self._wake_all = False
            dirty.clear()
            heap.clear()
            for s in self.streams:
                if s.active:
                    self._push_wake(s, now)
        else:
            # A stream needs fresh candidates when its own rate moved or
            # when a supply it is coupled to re-rated (its catch-up time
            # depends on both).  Everything else keeps its absolute wake
            # times from earlier recomputes.
            deps = self._deps
            for s in self._ordered:
                if s.effective_rate != s._wake_rate:
                    dirty.add(s)
                    consumers = deps.get(s)
                    if consumers:
                        dirty.update(consumers)
            if dirty:
                for s in dirty:
                    if s.active:
                        self._push_wake(s, now)
                dirty.clear()
        if len(heap) > 64 and len(heap) > 4 * len(self.streams):
            # Lazy deletion left mostly-dead entries behind; compact.
            live = [
                entry for entry in heap
                if entry[3].active and entry[2] == entry[3]._wake_stamp
            ]
            heap[:] = live
            heapify(heap)
        while heap:
            when, _seq, stamp, s = heap[0]
            if not s.active or stamp != s._wake_stamp:
                heappop(heap)
                continue
            dt = when - now
            if dt < 0.0:
                dt = 0.0
            if math.isinf(dt):
                return
            # A hair past the exact crossing so float drift cannot strand
            # a completion a femto-byte short.
            self._wake_token = self.engine.call_after(
                dt + 1e-12, self._recompute
            )
            return


def _close(a: float, b: float) -> bool:
    if math.isinf(a) and math.isinf(b):
        return True
    return abs(a - b) <= _RATE_TOL * max(1.0, abs(a), abs(b))
