"""Weighted max–min fair bandwidth allocation (progressive filling).

The fluid model at the core of the simulator: at any instant, every active
flow gets a rate such that

* no capacity constraint is violated (links, host copy budgets, disks);
* no per-flow rate limit is exceeded (TCP window caps, chain coupling);
* the allocation is max–min fair: a flow's rate can only be increased by
  decreasing that of a flow with an equal or smaller rate.

Constraints are generic capacity pools.  A flow consumes each of its
constraints at ``weight × rate`` — weights express that, e.g., a byte
written to disk costs more of a host's budget than a byte forwarded from
memory.

The algorithm is classic progressive filling: grow a common rate ``t``
for all unfrozen flows; freeze flows when they hit their individual limit
or when one of their constraints saturates.  Runs in
``O(iterations × (flows + constraint usage))`` with at most one freeze
group per iteration — microseconds for the few hundred flows our
experiments create.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..core.errors import SimulationError

_EPS = 1e-9


@dataclass(frozen=True)
class FlowSpec:
    """One flow to allocate.

    ``constraints`` lists ``(constraint_key, weight)`` pairs; ``limit`` is
    an individual rate cap (``inf`` when unconstrained).
    """

    key: Hashable
    constraints: Tuple[Tuple[Hashable, float], ...]
    limit: float = math.inf

    def __post_init__(self) -> None:
        if self.limit < 0:
            raise SimulationError(f"negative limit on flow {self.key!r}")
        for _c, w in self.constraints:
            if w <= 0:
                raise SimulationError(
                    f"non-positive constraint weight on flow {self.key!r}"
                )


class MaxMinProblem:
    """A reusable max–min instance: flows + capacities indexed once.

    The fluid fabric re-solves the same flow set many times per
    simulated instant (the coupling fixpoint) and across consecutive
    events; constructing the membership index each time dominated the
    profile, so it lives here and :meth:`solve` only copies the mutable
    per-solve state.

    The flow set itself evolves incrementally between solves — the
    common case is one stream completing out of hundreds — so the index
    supports :meth:`deactivate` (tombstone a flow, pruning it from the
    membership lists) and :meth:`add_flow` without re-indexing the
    surviving flows.
    """

    def __init__(
        self,
        flows: Sequence[FlowSpec],
        capacities: Dict[Hashable, float],
    ) -> None:
        self.flows = list(flows)
        self.capacities = capacities
        self.inactive: List[bool] = [False] * len(self.flows)
        self.n_active = len(self.flows)
        self._index: Dict[Hashable, int] = {}
        self.members: Dict[Hashable, List[Tuple[int, float]]] = {}
        for idx, flow in enumerate(self.flows):
            if flow.key in self._index:
                raise SimulationError(f"duplicate flow key {flow.key!r}")
            self._index[flow.key] = idx
            seen = set()
            for ckey, weight in flow.constraints:
                if ckey not in capacities:
                    raise SimulationError(
                        f"flow {flow.key!r} references unknown "
                        f"constraint {ckey!r}"
                    )
                if ckey in seen:
                    raise SimulationError(
                        f"flow {flow.key!r} lists constraint {ckey!r} twice"
                    )
                seen.add(ckey)
                self.members.setdefault(ckey, []).append((idx, weight))
        self._wsum0: Dict[Hashable, float] = {}
        for ckey, flws in self.members.items():
            cap = capacities[ckey]
            if cap < 0:
                raise SimulationError(f"negative capacity for {ckey!r}")
            self._wsum0[ckey] = sum(w for _i, w in flws)

    def deactivate(self, key: Hashable) -> None:
        """Tombstone one flow: prune its membership entries and weight
        contributions.  Subsequent solves skip it and omit it from the
        returned rate map.  O(sum of its constraints' member lists)
        instead of a full re-index."""
        idx = self._index[key]
        if self.inactive[idx]:
            return
        self.inactive[idx] = True
        self.n_active -= 1
        for ckey, weight in self.flows[idx].constraints:
            self.members[ckey] = [
                pair for pair in self.members[ckey] if pair[0] != idx
            ]
            self._wsum0[ckey] -= weight

    def add_flow(self, flow: FlowSpec) -> None:
        """Append one new flow to the live instance."""
        if flow.key in self._index:
            raise SimulationError(f"duplicate flow key {flow.key!r}")
        idx = len(self.flows)
        self.flows.append(flow)
        self.inactive.append(False)
        self.n_active += 1
        self._index[flow.key] = idx
        seen = set()
        for ckey, weight in flow.constraints:
            if ckey not in self.capacities:
                raise SimulationError(
                    f"flow {flow.key!r} references unknown "
                    f"constraint {ckey!r}"
                )
            if ckey in seen:
                raise SimulationError(
                    f"flow {flow.key!r} lists constraint {ckey!r} twice"
                )
            seen.add(ckey)
            self.members.setdefault(ckey, []).append((idx, weight))
            self._wsum0[ckey] = self._wsum0.get(ckey, 0.0) + weight

    def solve(
        self, limits: Optional[Dict[Hashable, float]] = None
    ) -> Dict[Hashable, float]:
        rates, _causes = _solve_indexed(self, limits)
        return rates

    def solve_explained(
        self, limits: Optional[Dict[Hashable, float]] = None
    ) -> Tuple[Dict[Hashable, float], Dict[Hashable, object]]:
        """Like :meth:`solve`, also returning what froze each flow:
        ``"limit"`` (its own rate cap), ``("constraint", key)`` (a
        saturated capacity), or ``"unbounded"``."""
        return _solve_indexed(self, limits)


def solve_max_min(
    flows: Sequence[FlowSpec],
    capacities: Dict[Hashable, float],
    limits: Optional[Dict[Hashable, float]] = None,
) -> Dict[Hashable, float]:
    """Allocate max–min fair rates (one-shot convenience wrapper).

    ``capacities`` maps constraint keys to available capacity; every
    constraint referenced by a flow must be present.  ``limits``
    optionally overrides per-flow limits by flow key.  Returns
    ``{flow_key: rate}``.  For repeated solves over the same flow set,
    build a :class:`MaxMinProblem` once and call ``solve``.
    """
    return MaxMinProblem(flows, capacities).solve(limits)


def _solve_indexed(
    problem: MaxMinProblem,
    limits: Optional[Dict[Hashable, float]],
) -> Tuple[Dict[Hashable, float], Dict[Hashable, object]]:
    """Progressive filling with two lazy priority queues — one over flow
    limits (pre-sorted), one over constraint saturation times (heap with
    versioned entries) — and lazily-materialised capacity consumption,
    so a solve costs ``O((flows + constraints) · log)``."""
    flows = problem.flows
    inactive = problem.inactive
    if not problem.n_active:
        return {}, {}
    members = problem.members

    n = len(flows)
    limit_of = [
        (limits.get(f.key, f.limit) if limits is not None else f.limit)
        for f in flows
    ]
    for f, lim in zip(flows, limit_of):
        if lim < 0:
            raise SimulationError(f"negative limit for flow {f.key!r}")

    rates = [0.0] * n
    # Tombstoned flows start frozen so no loop ever visits them; they are
    # filtered from the returned maps at the end.
    frozen = list(inactive)
    causes: List[object] = [None] * n
    remaining: Dict[Hashable, float] = {
        ckey: problem.capacities[ckey] for ckey in members
    }
    wsum: Dict[Hashable, float] = dict(problem._wsum0)
    version: Dict[Hashable, int] = dict.fromkeys(members, 0)
    last_t: Dict[Hashable, float] = dict.fromkeys(members, 0.0)

    # Heap of constraint saturation times, lazily invalidated by version.
    cheap: List[Tuple[float, int, Hashable, int]] = []
    seq = 0
    t = 0.0

    def refresh(ckey: Hashable) -> None:
        """Bring a constraint's remaining capacity up to time ``t``.

        Consumption is linear while the constraint's unfrozen weight is
        unchanged, so remaining capacity is only materialised when the
        constraint is actually touched — the whole solve never iterates
        all constraints per round.
        """
        lt = last_t[ckey]
        if t > lt:
            w = wsum[ckey]
            if w > _EPS:
                remaining[ckey] = max(0.0, remaining[ckey] - w * (t - lt))
            last_t[ckey] = t

    def push_constraint(ckey: Hashable) -> None:
        nonlocal seq
        w = wsum[ckey]
        if w > _EPS:
            seq += 1
            heapq.heappush(
                cheap, (t + remaining[ckey] / w, seq, ckey, version[ckey])
            )

    for ckey in members:
        push_constraint(ckey)

    # Flows sorted by limit; a moving pointer yields the next limit freeze.
    by_limit = sorted(
        (i for i in range(n) if not inactive[i]), key=lambda i: limit_of[i]
    )
    n_limits = len(by_limit)
    lim_ptr = 0
    n_unfrozen = problem.n_active

    def freeze(idx: int, rate: float, cause: object) -> None:
        nonlocal n_unfrozen
        if frozen[idx]:
            return
        frozen[idx] = True
        rates[idx] = rate
        causes[idx] = cause
        n_unfrozen -= 1
        for ckey, weight in flows[idx].constraints:
            refresh(ckey)          # settle consumption at the old weight
            wsum[ckey] -= weight
            version[ckey] += 1
            push_constraint(ckey)

    while n_unfrozen > 0:
        while lim_ptr < n_limits and frozen[by_limit[lim_ptr]]:
            lim_ptr += 1
        limit_cand = (
            limit_of[by_limit[lim_ptr]] if lim_ptr < n_limits else math.inf
        )

        constraint_cand = math.inf
        while cheap:
            t_sat, _s, ckey, ver = cheap[0]
            if ver != version[ckey] or wsum[ckey] <= _EPS:
                heapq.heappop(cheap)
                continue
            constraint_cand = t_sat
            break

        t_next = min(limit_cand, constraint_cand)
        if math.isinf(t_next):
            for idx in range(n):
                if not frozen[idx]:
                    freeze(idx, math.inf, "unbounded")
            break
        t = max(t_next, t)

        if constraint_cand <= limit_cand:
            # Freeze every unfrozen flow on the saturated constraint.
            _t_sat, _s, ckey, _ver = heapq.heappop(cheap)
            for idx, _w in members[ckey]:
                if not frozen[idx]:
                    at_limit = limit_of[idx] <= t
                    freeze(
                        idx, min(t, limit_of[idx]),
                        "limit" if at_limit else ("constraint", ckey),
                    )
        else:
            # Freeze the flow(s) whose limit was reached.
            while lim_ptr < n_limits:
                idx = by_limit[lim_ptr]
                if frozen[idx]:
                    lim_ptr += 1
                    continue
                if limit_of[idx] <= t + _EPS:
                    freeze(idx, limit_of[idx], "limit")
                    lim_ptr += 1
                else:
                    break

    return (
        {flow.key: rates[idx] for idx, flow in enumerate(flows)
         if not inactive[idx]},
        {flow.key: causes[idx] for idx, flow in enumerate(flows)
         if not inactive[idx]},
    )
