"""Per-node reception tracking for simulated broadcast methods.

A simulated node's "how much of the stream do I have" outlives any single
inbound stream: after a failure its upstream is replaced and a new stream
continues from the same absolute offset.  :class:`NodeRx` wraps a
re-pointable :class:`~repro.simnet.fabric.StreamSupply` and adds the two
things method controllers need:

* :meth:`position` — absolute bytes received so far (frozen across gaps);
* :meth:`wait_for` — a sub-generator (use with ``yield from``) that
  blocks until the node has reached an absolute offset, transparently
  surviving stream replacement and upstream death.
"""

from __future__ import annotations

from typing import Optional

from .engine import Engine, Event
from .fabric import HostDied, Stream, StreamCancelled, StreamSupply

_BYTE_EPS = 0.5


class NodeRx:
    """Reception state of one simulated node."""

    def __init__(self, engine: Engine, name: str) -> None:
        self.engine = engine
        self.name = name
        self.supply = StreamSupply()
        self._attach_event: Event = engine.event(name=f"attach:{name}")
        self.aborted = False

    # ------------------------------------------------------------------

    def position(self) -> float:
        """Absolute stream offset received so far."""
        return self.supply.available()

    @property
    def stream(self) -> Optional[Stream]:
        return self.supply._stream

    def attach(self, stream: Optional[Stream]) -> None:
        """Point this node's reception at a new inbound stream.

        Bytes received on the previous stream are frozen into the
        position; waiters blocked on :meth:`wait_for` are woken so they
        can re-subscribe to the new stream.
        """
        self.supply.attach(stream)
        prev, self._attach_event = (
            self._attach_event,
            self.engine.event(name=f"attach:{self.name}"),
        )
        if not prev.triggered:
            prev.succeed(stream)

    def abort(self) -> None:
        """Mark the node as having given up (unrecoverable data loss)."""
        self.aborted = True
        self.attach(None)

    # ------------------------------------------------------------------

    def wait_for(self, abs_offset: float):
        """Sub-generator: resume once ``position() >= abs_offset``.

        Survives stream replacement (re-subscribes on attach) and upstream
        death (waits for the next attach).  Never raises on stream churn;
        raises nothing and returns the reached position.
        """
        while self.position() < abs_offset - _BYTE_EPS:
            stream = self.stream
            if stream is None or not stream.active:
                yield self._attach_event
                continue
            try:
                yield stream.when_delivered(abs_offset)
            except (HostDied, StreamCancelled):
                continue
        return self.position()


class HeadRx(NodeRx):
    """The head node 'received' everything before the transfer started
    (it reads a local file / RAM); position is pinned to the stream size."""

    def __init__(self, engine: Engine, name: str, size: float) -> None:
        super().__init__(engine, name)
        self._size = size

    def position(self) -> float:
        return self._size

    def wait_for(self, abs_offset: float):
        return self._size
        yield  # pragma: no cover - makes this a generator for symmetry
