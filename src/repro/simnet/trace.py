"""Simulation tracing: rate timelines, stream spans, bottleneck reports.

Attach a :class:`FabricTracer` before running and ask it afterwards why
the broadcast behaved the way it did::

    tracer = FabricTracer(fabric)
    engine.run()
    print(tracer.gantt())
    print(tracer.bottleneck_report())

The tracer samples on every re-rating (a fabric observer), so timelines
are exact piecewise-constant records, not polled approximations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from .fabric import Fabric, Stream


@dataclass
class StreamTrace:
    """Everything observed about one stream."""

    key: Hashable
    src: str
    dsts: Tuple[str, ...]
    opened_at: float
    #: (time, effective rate) breakpoints — piecewise constant between.
    timeline: List[Tuple[float, float]] = field(default_factory=list)
    closed_at: Optional[float] = None
    final_delivered: float = 0.0
    last_binding: object = None
    #: The live stream object, kept so the final delivered byte count is
    #: read after completion (the stream leaves the fabric before the
    #: observer's last look).
    stream: Optional[Stream] = None

    @property
    def duration(self) -> float:
        end = self.closed_at if self.closed_at is not None else (
            self.timeline[-1][0] if self.timeline else self.opened_at
        )
        return max(0.0, end - self.opened_at)

    @property
    def mean_rate(self) -> float:
        return self.final_delivered / self.duration if self.duration > 0 else 0.0

    def rate_at(self, t: float) -> float:
        """Effective rate at simulated time ``t`` (0 outside the span)."""
        rate = 0.0
        for when, value in self.timeline:
            if when > t:
                break
            rate = value
        if self.closed_at is not None and t >= self.closed_at:
            return 0.0
        return rate


class FabricTracer:
    """Records per-stream rate history from a fabric's re-ratings.

    ``events`` optionally takes a
    :class:`~repro.core.tracing.TraceCollector`: each stream open/close
    is then mirrored as a CONNECT/DONE structured event (stamped with
    simulated time), so fluid-flow runs share the runtime's timeline
    vocabulary.
    """

    def __init__(self, fabric: Fabric, events=None) -> None:
        self.fabric = fabric
        self.streams: Dict[Hashable, StreamTrace] = {}
        self.events = events
        fabric.observers.append(self._observe)

    def _emit(self, type_: str, trace: "StreamTrace", t: float,
              detail: str) -> None:
        if self.events is not None and self.events.enabled:
            self.events.emit(type_, trace.src, t=t, peer=trace.dsts[0],
                             detail=detail)

    # ------------------------------------------------------------------

    def _observe(self, fabric: Fabric) -> None:
        now = fabric.engine.now
        seen = set()
        for s in fabric.streams:
            seen.add(s.key)
            trace = self.streams.get(s.key)
            if trace is None:
                trace = StreamTrace(
                    key=s.key, src=s.src, dsts=s.dsts, opened_at=now,
                    stream=s,
                )
                self.streams[s.key] = trace
                self._emit("connect", trace, now, "stream-open")
            if s.active:
                if (not trace.timeline
                        or abs(trace.timeline[-1][1] - s.effective_rate)
                        > 1e-9 * max(1.0, s.effective_rate)):
                    trace.timeline.append((now, s.effective_rate))
                trace.final_delivered = s.delivered
                trace.last_binding = s.binding
        # Close spans of streams that left the fabric, reading their
        # authoritative final position.
        for key, trace in self.streams.items():
            if trace.closed_at is None and key not in seen:
                trace.closed_at = now
                if trace.stream is not None:
                    trace.final_delivered = trace.stream.delivered
                    trace.last_binding = trace.stream.binding
                self._emit("done", trace, now, "stream-closed")

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------

    def horizon(self) -> float:
        ends = [
            t.closed_at if t.closed_at is not None
            else (t.timeline[-1][0] if t.timeline else t.opened_at)
            for t in self.streams.values()
        ]
        return max(ends, default=0.0)

    def gantt(self, width: int = 64, max_rows: int = 40) -> str:
        """Text gantt: one row per stream, ``█`` while it was moving."""
        if not self.streams:
            return "(no streams traced)"
        horizon = max(self.horizon(), 1e-9)
        lines = [f"stream spans over {horizon:.2f}s simulated:"]
        traces = sorted(self.streams.values(), key=lambda t: t.opened_at)
        shown = traces[:max_rows]
        for trace in shown:
            start = int(trace.opened_at / horizon * (width - 1))
            end_t = trace.closed_at if trace.closed_at is not None else horizon
            end = max(start + 1, int(end_t / horizon * (width - 1)))
            bar = " " * start + "█" * (end - start)
            label = f"{trace.src}->{trace.dsts[0]}"
            lines.append(
                f"  {label:>22.22s} |{bar:<{width}}| "
                f"{trace.mean_rate / 1e6:7.1f} MB/s"
            )
        if len(traces) > max_rows:
            lines.append(f"  ... and {len(traces) - max_rows} more")
        return "\n".join(lines)

    def bottleneck_report(self) -> str:
        """Group finished streams by what bound their rate last."""
        groups: Dict[str, List[StreamTrace]] = {}
        for trace in self.streams.values():
            binding = trace.last_binding
            if binding is None:
                label = "unknown"
            elif isinstance(binding, tuple):
                kind, ident = binding
                label = f"{kind}:{ident}"
            else:
                label = str(binding)
            groups.setdefault(label, []).append(trace)
        lines = ["bottleneck attribution (last binding per stream):"]
        for label, traces in sorted(groups.items(),
                                    key=lambda kv: -len(kv[1])):
            rates = [t.mean_rate / 1e6 for t in traces]
            lines.append(
                f"  {label:>28.28s}: {len(traces):3d} stream(s), "
                f"mean {sum(rates) / len(rates):7.1f} MB/s"
            )
        return "\n".join(lines)

    def timeline_of(self, key: Hashable) -> List[Tuple[float, float]]:
        trace = self.streams.get(key)
        return list(trace.timeline) if trace else []
