"""Chunk-level reference model for validating the fluid simulator.

The fluid model replaces per-chunk store-and-forward with coupled
continuous flows.  For a *chain on dedicated links* (each hop limited
only by its own rate — the Fig. 7 regime), the chunk-level behaviour has
an exact closed form, the classic pipeline recurrence:

    depart(i, k) = max(arrive(i, k), depart(i, k-1)) + c / r_i
    arrive(i+1, k) = depart(i, k) + latency_i

where ``c`` is the chunk size and ``r_i`` hop *i*'s service rate.  With
monotone rates this telescopes to the familiar

    completion(last) = fill + remaining work at the bottleneck rate

This module implements the recurrence directly (no simulation), so the
fluid fabric can be checked against an independent, obviously-correct
model — see ``tests/simnet/test_validation.py``, which bounds the
divergence on uniform, bottlenecked, and latency-heavy chains.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence


def chunk_pipeline_times(
    size: float,
    chunk: float,
    hop_rates: Sequence[float],
    hop_latencies: Optional[Sequence[float]] = None,
) -> List[float]:
    """Completion time of each node in a store-and-forward chain.

    ``hop_rates[i]`` is the service rate of hop *i* (node *i* → node
    *i+1*); the returned list has one completion time per *receiving*
    node.  The final partial chunk is modelled exactly.
    """
    if size < 0 or chunk <= 0:
        raise ValueError("need size >= 0 and chunk > 0")
    n_hops = len(hop_rates)
    if n_hops == 0:
        return []
    latencies = list(hop_latencies) if hop_latencies is not None else [0.0] * n_hops
    if len(latencies) != n_hops:
        raise ValueError("hop_latencies length must match hop_rates")
    if size == 0:
        return [latencies[i] for i in range(n_hops)]

    n_chunks = int(math.ceil(size / chunk))
    sizes = [chunk] * n_chunks
    sizes[-1] = size - chunk * (n_chunks - 1)

    # arrive[k] at the head is 0 (the source is local).
    arrive = [0.0] * n_chunks
    completions: List[float] = []
    for i, rate in enumerate(hop_rates):
        if rate <= 0:
            raise ValueError(f"hop {i} has non-positive rate")
        depart_prev = 0.0
        next_arrive = [0.0] * n_chunks
        for k in range(n_chunks):
            start = max(arrive[k], depart_prev)
            depart_prev = start + sizes[k] / rate
            next_arrive[k] = depart_prev + latencies[i]
        completions.append(next_arrive[-1])
        arrive = next_arrive
    return completions


def chunk_pipeline_completion(
    size: float,
    chunk: float,
    hop_rates: Sequence[float],
    hop_latencies: Optional[Sequence[float]] = None,
) -> float:
    """Completion time of the last node (the broadcast's finish time)."""
    times = chunk_pipeline_times(size, chunk, hop_rates, hop_latencies)
    return times[-1] if times else 0.0
