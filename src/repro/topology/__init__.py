"""Network topologies of the paper's evaluation platforms: fat trees,
single/two-switch clusters, and the Grid'5000 multi-site WAN."""

from .builders import (
    LAN_LATENCY,
    build_fat_tree,
    build_single_switch,
    build_two_switch,
)
from .graph import DiskSpec, Host, Link, Network
from .ordering import (
    OrderAudit,
    audit_order,
    chain_plan_by_attachment,
    crossing_count,
    order_by_attachment,
)
from .serialize import load_network, network_from_json, network_to_json, parse_rate
from .multisite import (
    ALL_SITES,
    HOME_SITE,
    SITE_ORDER,
    build_multisite,
    experiment_chain,
    link_usage,
)

__all__ = [
    "Network",
    "Host",
    "Link",
    "DiskSpec",
    "build_fat_tree",
    "build_single_switch",
    "build_two_switch",
    "build_multisite",
    "experiment_chain",
    "link_usage",
    "LAN_LATENCY",
    "order_by_attachment",
    "chain_plan_by_attachment",
    "crossing_count",
    "audit_order",
    "OrderAudit",
    "network_from_json",
    "network_to_json",
    "load_network",
    "parse_rate",
    "ALL_SITES",
    "HOME_SITE",
    "SITE_ORDER",
]
