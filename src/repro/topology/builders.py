"""Topology builders for the paper's experimental platforms.

Each builder returns a :class:`~repro.topology.graph.Network` matching one
of the Grid'5000 setups of §IV:

* :func:`build_fat_tree` — the 1 GbE clusters of Figs. 7/10/11/14:
  30–35 hosts per top-of-the-rack switch, one 10 Gb uplink per ToR to a
  core switch (Fig. 1);
* :func:`build_single_switch` — the 14-node 10 GbE cluster of Fig. 8;
* :func:`build_two_switch` — the InfiniBand fabric of Fig. 9: hosts fill
  switch A first (120 ports), then switch B, joined by one trunk.
"""

from __future__ import annotations

import math
from typing import Optional

from ..core.units import GIGABIT, TEN_GIGABIT, TWENTY_GIGABIT
from .graph import DiskSpec, Network

#: Default LAN one-way latencies (the paper reports <0.2 ms intra-site ping).
LAN_LATENCY = 50e-6
TOR_UPLINK_LATENCY = 5e-6


def build_fat_tree(
    n_hosts: int,
    *,
    hosts_per_switch: int = 30,
    host_rate: float = GIGABIT,
    uplink_rate: float = TEN_GIGABIT,
    host_copy_bw: float = math.inf,
    disk: Optional[DiskSpec] = None,
    host_prefix: str = "node",
) -> Network:
    """A two-level fat tree: ToR switches with 10 Gb uplinks to one core.

    Hosts are named ``node-1 .. node-N`` and attached to ToR switches in
    contiguous blocks — the assumption Kascade's default ordering relies
    on ("nodes 1 to 30 are on the first switch", §III-A).
    """
    if n_hosts < 1:
        raise ValueError("need at least one host")
    net = Network(name=f"fattree-{n_hosts}")
    net.add_switch("core")
    n_switches = (n_hosts + hosts_per_switch - 1) // hosts_per_switch
    for s in range(n_switches):
        tor = net.add_switch(f"tor-{s + 1}")
        net.add_link("core", tor, uplink_rate, TOR_UPLINK_LATENCY)
    for i in range(n_hosts):
        name = f"{host_prefix}-{i + 1}"
        net.add_host(name, nic_rate=host_rate, copy_bw=host_copy_bw, disk=disk)
        tor = f"tor-{i // hosts_per_switch + 1}"
        net.add_link(name, tor, host_rate, LAN_LATENCY)
    return net


def build_single_switch(
    n_hosts: int,
    *,
    host_rate: float = TEN_GIGABIT,
    host_copy_bw: float = math.inf,
    disk: Optional[DiskSpec] = None,
    host_prefix: str = "node",
) -> Network:
    """All hosts on one non-blocking switch (the 10 GbE cluster of §IV-B)."""
    net = Network(name=f"switch-{n_hosts}")
    net.add_switch("sw")
    for i in range(n_hosts):
        name = f"{host_prefix}-{i + 1}"
        net.add_host(name, nic_rate=host_rate, copy_bw=host_copy_bw, disk=disk)
        net.add_link(name, "sw", host_rate, LAN_LATENCY)
    return net


def build_two_switch(
    n_hosts: int,
    *,
    ports_per_switch: int = 120,
    host_rate: float = TWENTY_GIGABIT,
    trunk_rate: float = TWENTY_GIGABIT,
    host_copy_bw: float = math.inf,
    host_prefix: str = "node",
) -> Network:
    """Two switches joined by a trunk; hosts fill switch A first.

    Models the InfiniBand platform of Fig. 9: reservations up to 120
    nodes stay on one switch, larger ones spill to the second and the
    trunk becomes the contended resource.
    """
    net = Network(name=f"twoswitch-{n_hosts}")
    net.add_switch("sw-a")
    net.add_switch("sw-b")
    net.add_link("sw-a", "sw-b", trunk_rate, TOR_UPLINK_LATENCY)
    for i in range(n_hosts):
        name = f"{host_prefix}-{i + 1}"
        net.add_host(name, nic_rate=host_rate, copy_bw=host_copy_bw)
        switch = "sw-a" if i < ports_per_switch else "sw-b"
        net.add_link(name, switch, host_rate, LAN_LATENCY)
    return net
