"""Network topology model: hosts, switches, directed capacitated links.

The model captures exactly what the paper's evaluation depends on
(§II-A2): link capacities, full-duplex operation (each direction is an
independent directed link), per-link latency, and the hierarchy of hosts
behind top-of-the-rack switches behind core equipment (Fig. 1).

Hosts carry performance attributes consumed by the fluid simulator:

* ``nic_rate`` — line rate of the host's network interface;
* ``copy_bw`` — the host's byte-shuffling budget (memory bus / userspace
  copy ceiling).  Every byte a broadcast implementation receives *and*
  every byte it sends consumes this budget, which is what caps Kascade
  near 2 Gbit/s on a 10 GbE fabric in the paper (§IV-B: "the bottleneck
  is the memory");
* ``disk`` — optional disk performance descriptor for write-to-storage
  experiments (§IV-D).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..core.errors import SimulationError
from ..core.units import GIGABIT


@dataclass(frozen=True)
class DiskSpec:
    """Local storage performance (the paper's Hitachi 7K1000.C test: about
    83.5 MB/s raw sequential write, §IV-D)."""

    write_bw: float = 83.5e6
    #: Multiplier applied for sequential streaming writes (Kascade-style);
    #: bursty/unaligned write patterns get a lower effective factor.
    seq_efficiency: float = 1.0


@dataclass
class Host:
    """A compute node attached to the network."""

    name: str
    nic_rate: float = GIGABIT
    copy_bw: float = math.inf
    #: Platform ceiling on the copy budget, e.g. CPU folding in an
    #: emulated platform (Distem, §IV-G).  Honoured by the methods when
    #: they stamp their implementation's ``copy_bw`` onto hosts.
    copy_limit: float = math.inf
    disk: Optional[DiskSpec] = None
    switch: Optional[str] = None  # attachment point, for grouping/ordering


@dataclass(frozen=True)
class Link:
    """One *direction* of a physical link (full duplex = two links)."""

    link_id: int
    src: str
    dst: str
    capacity: float  # bytes/second
    latency: float   # seconds (one-way)


class Network:
    """A capacitated network of hosts and switches.

    Switches are pure forwarding elements (non-blocking backplane, the
    common case for the ToR hardware in the paper); congestion happens on
    links and inside hosts, which matches the paper's observations.
    """

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self.hosts: Dict[str, Host] = {}
        self.switches: set[str] = set()
        self.links: List[Link] = []
        self._graph = nx.DiGraph()
        self._route_cache: Dict[Tuple[str, str], Tuple[Link, ...]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_host(self, name: str, **attrs) -> Host:
        if name in self.hosts or name in self.switches:
            raise SimulationError(f"duplicate network element {name!r}")
        host = Host(name=name, **attrs)
        self.hosts[name] = host
        self._graph.add_node(name)
        return host

    def add_switch(self, name: str) -> str:
        if name in self.hosts or name in self.switches:
            raise SimulationError(f"duplicate network element {name!r}")
        self.switches.add(name)
        self._graph.add_node(name)
        return name

    def add_link(self, a: str, b: str, capacity: float, latency: float = 50e-6) -> None:
        """Add a full-duplex link (two directed links) between ``a``/``b``."""
        for node in (a, b):
            if node not in self._graph:
                raise SimulationError(f"unknown element {node!r}")
        if capacity <= 0:
            raise SimulationError(f"non-positive capacity on {a}-{b}")
        for src, dst in ((a, b), (b, a)):
            link = Link(len(self.links), src, dst, capacity, latency)
            self.links.append(link)
            self._graph.add_edge(src, dst, link=link, weight=latency)
        if a in self.hosts and b in self.switches:
            self.hosts[a].switch = b
        if b in self.hosts and a in self.switches:
            self.hosts[b].switch = a
        self._route_cache.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise SimulationError(f"unknown host {name!r}") from None

    def host_names(self) -> List[str]:
        return list(self.hosts)

    def route(self, src: str, dst: str) -> Tuple[Link, ...]:
        """Directed links along the latency-shortest path ``src`` → ``dst``.

        Routes are static and cached (clusters do not reroute mid-transfer).
        """
        if src == dst:
            return ()
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        try:
            path = nx.shortest_path(self._graph, src, dst, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise SimulationError(f"no route {src!r} -> {dst!r}") from None
        links = tuple(
            self._graph.edges[u, v]["link"] for u, v in zip(path, path[1:])
        )
        self._route_cache[key] = links
        return links

    def path_latency(self, src: str, dst: str) -> float:
        """One-way latency along the route (sum of link latencies)."""
        return sum(l.latency for l in self.route(src, dst))

    def rtt(self, src: str, dst: str) -> float:
        return self.path_latency(src, dst) + self.path_latency(dst, src)

    def hosts_by_switch(self) -> Dict[Optional[str], List[str]]:
        """Group host names by their attachment switch."""
        groups: Dict[Optional[str], List[str]] = {}
        for host in self.hosts.values():
            groups.setdefault(host.switch, []).append(host.name)
        return groups

    def crossings(self, order: Sequence[str]) -> int:
        """How many consecutive pairs in ``order`` live on different
        switches — the quantity a topology-aware pipeline minimises."""
        count = 0
        for a, b in zip(order, order[1:]):
            if self.host(a).switch != self.host(b).switch:
                count += 1
        return count

    def __repr__(self) -> str:
        return (
            f"<Network {self.name!r}: {len(self.hosts)} hosts, "
            f"{len(self.switches)} switches, {len(self.links) // 2} links>"
        )
