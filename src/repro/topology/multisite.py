"""Grid'5000-like multi-site WAN topology (Figs. 12–13).

The paper's §IV-E experiment reserves one node on each of several
geographically distant sites and adds sites one by one in the order
*Lille, Grenoble, Luxembourg, Lyon, Rennes, Sophia* — deliberately a
geographically poor order, so backbone links are traversed repeatedly
("the link between Paris and Lyon is used 5 times").

The backbone below follows the RENATER layout sketched in Fig. 12: sites
hang off two hubs (Paris and Lyon) with 10 Gbit/s links.  Inter-site ICMP
latency in the paper is about 16 ms RTT; intra-site below 0.2 ms.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core.units import GIGABIT, TEN_GIGABIT
from .graph import Network

#: Backbone edges: (a, b, one-way latency seconds).  Latencies are rough
#: great-circle figures scaled to reproduce the paper's ~16 ms inter-site
#: RTT between typical site pairs.
BACKBONE = [
    ("paris", "lille", 2.0e-3),
    ("paris", "rennes", 3.5e-3),
    ("paris", "nancy", 3.0e-3),
    ("nancy", "luxembourg", 1.5e-3),
    ("paris", "reims", 1.5e-3),
    ("paris", "lyon", 4.0e-3),
    ("lyon", "grenoble", 1.5e-3),
    ("lyon", "sophia", 3.5e-3),
    ("paris", "bordeaux", 5.0e-3),
    ("bordeaux", "toulouse", 2.0e-3),
]

#: Sites in the order the paper's Fig. 13 experiment adds them.  The first
#: measurement point uses two nodes on the *home* site (Nancy), so the
#: plotted "1 site" point is an intra-site transfer.
HOME_SITE = "nancy"
SITE_ORDER = ["lille", "grenoble", "luxembourg", "lyon", "rennes", "sophia"]

ALL_SITES = sorted({a for a, _, _ in BACKBONE} | {b for _, b, _ in BACKBONE})


def build_multisite(
    n_sites: int,
    *,
    host_rate: float = GIGABIT,
    backbone_rate: float = TEN_GIGABIT,
    host_copy_bw: float = float("inf"),
) -> Network:
    """Build the WAN with the home site plus the first ``n_sites`` of
    :data:`SITE_ORDER` holding one reserved node each.

    ``n_sites = 0`` gives the intra-site baseline: two nodes at Nancy.
    Host names are ``<site>-1`` (plus ``nancy-2`` for the baseline pair).
    """
    if not 0 <= n_sites <= len(SITE_ORDER):
        raise ValueError(f"n_sites must be in [0, {len(SITE_ORDER)}]")
    net = Network(name=f"multisite-{n_sites}")
    for site in ALL_SITES:
        net.add_switch(site)
    for a, b, lat in BACKBONE:
        net.add_link(a, b, backbone_rate, lat)

    def attach(site: str, idx: int) -> str:
        name = f"{site}-{idx}"
        net.add_host(name, nic_rate=host_rate, copy_bw=host_copy_bw)
        net.add_link(name, site, host_rate, 25e-6)
        return name

    attach(HOME_SITE, 1)
    attach(HOME_SITE, 2)
    for site in SITE_ORDER[:n_sites]:
        attach(site, 1)
    return net


def experiment_chain(n_sites: int) -> List[str]:
    """Host chain for the Fig. 13 experiment with ``n_sites`` remote sites:
    head at Nancy, second Nancy node first, then the remote sites in the
    paper's order."""
    chain = [f"{HOME_SITE}-1", f"{HOME_SITE}-2"]
    chain += [f"{site}-1" for site in SITE_ORDER[:n_sites]]
    return chain


def link_usage(net: Network, chain: Sequence[str]) -> Dict[str, int]:
    """Count how many chain hops traverse each undirected backbone link —
    reproduces the paper's observation that a poor site order reuses the
    Paris–Lyon link five times."""
    usage: Dict[str, int] = {}
    for a, b in zip(chain, chain[1:]):
        for link in net.route(a, b):
            if link.src in ALL_SITES and link.dst in ALL_SITES:
                key = "-".join(sorted((link.src, link.dst)))
                usage[key] = usage.get(key, 0) + 1
    return usage
