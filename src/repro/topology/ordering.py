"""Deriving a pipeline order from an explicit topology description.

Kascade's default assumes host *names* encode rack locality ("nodes 1 to
30 are on the first switch", §III-A) and offers a custom order as the
escape hatch.  When the topology is actually known — as it is on any
managed cluster — the order can be derived instead of assumed.  This
module computes orders that minimise inter-switch crossings:

* :func:`order_by_attachment` — group hosts by their attachment switch
  (natural-sorted inside each group), visiting switch groups in an
  order that keeps *adjacent* switches adjacent when the switch layer
  itself has structure;
* :func:`crossing_count` — the objective: how many consecutive pairs
  change switches (each crossing consumes inter-switch capacity twice,
  once up and once down);
* :func:`audit_order` — a report comparing a proposed order against the
  topology-derived one, for operators who want to know *why* their
  broadcast underperforms before reaching for Fig. 10;
* :func:`chain_plan_by_attachment` — the striped form: a
  :class:`~repro.core.plan.ChainPlan` whose stripes rotate the chain at
  switch-group granularity, spreading k chains' crossings over the
  switch layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.pipeline import hostname_sort_key
from ..core.plan import ChainPlan
from .graph import Network


def crossing_count(net: Network, order: Sequence[str]) -> int:
    """Consecutive pairs of ``order`` attached to different switches."""
    return net.crossings(order)


def order_by_attachment(net: Network, hosts: Optional[Sequence[str]] = None) -> List[str]:
    """Topology-derived pipeline order: one switch group after another.

    Hosts inside a group sort naturally by name; groups sort by the
    natural key of their first member, which keeps the result stable
    and deterministic.  The resulting chain crosses switches exactly
    ``(number of used switches) - 1`` times — the minimum possible for
    a single chain.
    """
    return [name for members in _attachment_groups(net, hosts)
            for name in members]


def _attachment_groups(net: Network,
                       hosts: Optional[Sequence[str]]) -> List[List[str]]:
    """Switch groups in the deterministic order of
    :func:`order_by_attachment` (whose result is their flattening)."""
    pool = list(hosts) if hosts is not None else net.host_names()
    groups: Dict[Optional[str], List[str]] = {}
    for name in pool:
        groups.setdefault(net.host(name).switch, []).append(name)
    for members in groups.values():
        members.sort(key=hostname_sort_key)
    return sorted(groups.values(),
                  key=lambda members: hostname_sort_key(members[0]))


def chain_plan_by_attachment(
    net: Network,
    head: str,
    hosts: Optional[Sequence[str]] = None,
    *,
    stripes: int = 1,
) -> ChainPlan:
    """Topology-derived :class:`~repro.core.plan.ChainPlan`.

    Stripe 0 is exactly :func:`order_by_attachment`.  Further stripes
    rotate the chain at *switch-group* granularity — stripe ``j`` starts
    ``(j * G) // stripes`` groups in — so every stripe still crosses
    switches the minimum number of times while its traffic starts on a
    different switch, spreading the k chains' inter-switch load instead
    of stacking all k crossings onto the same uplink.

    ``head`` is the sender and stays out of the receiver ordering (give
    ``hosts`` explicitly when the head is part of ``net``).
    """
    groups = _attachment_groups(net, hosts)
    n_groups = len(groups)
    orders = []
    for j in range(stripes):
        shift = (j * n_groups) // stripes
        rotated = groups[shift:] + groups[:shift]
        orders.append([name for members in rotated for name in members])
    return ChainPlan.from_orders(head, orders)


@dataclass(frozen=True)
class OrderAudit:
    """Comparison of a proposed order against the topology-derived one."""

    proposed_crossings: int
    optimal_crossings: int
    n_switches: int

    @property
    def is_topology_aware(self) -> bool:
        """Within one extra crossing of the minimum (head placement can
        legitimately cost one)."""
        return self.proposed_crossings <= self.optimal_crossings + 1

    def summary(self) -> str:
        if self.is_topology_aware:
            return (
                f"order is topology-aware: {self.proposed_crossings} "
                f"inter-switch crossing(s) across {self.n_switches} switch(es)"
            )
        return (
            f"order crosses switches {self.proposed_crossings}x where "
            f"{self.optimal_crossings}x suffices — expect inter-switch "
            f"links to carry up to "
            f"{max(1, self.proposed_crossings // max(1, self.n_switches - 1))}"
            f"x the traffic of a topology-aware pipeline"
        )


def audit_order(net: Network, order: Sequence[str]) -> OrderAudit:
    """Audit a proposed pipeline order against the topology."""
    optimal = order_by_attachment(net, order)
    switches = {net.host(h).switch for h in order}
    return OrderAudit(
        proposed_crossings=crossing_count(net, order),
        optimal_crossings=crossing_count(net, optimal),
        n_switches=len(switches),
    )
