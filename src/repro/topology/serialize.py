"""Topology serialization: describe a cluster as JSON, simulate it.

The built-in builders reproduce the paper's platforms; a user who wants
broadcast predictions for *their own* cluster writes a document like::

    {
      "name": "my-cluster",
      "switches": ["tor-1", "tor-2", "core"],
      "hosts": [
        {"name": "web-01", "nic_rate": "1Gbit",
         "disk": {"write_bw": "120MB", "seq_efficiency": 0.9}},
        {"name": "web-02", "nic_rate": "1Gbit"}
      ],
      "links": [
        {"a": "web-01", "b": "tor-1", "capacity": "1Gbit", "latency": 5e-5},
        {"a": "web-02", "b": "tor-2", "capacity": "1Gbit"},
        {"a": "tor-1", "b": "core", "capacity": "10Gbit"},
        {"a": "tor-2", "b": "core", "capacity": "10Gbit"}
      ]
    }

and feeds it to ``kascade-sim compare --topology-file my-cluster.json``.
Rates accept raw bytes/second numbers or strings: ``"10Gbit"``/``"1Gb"``
(decimal bits per second) and ``"120MB"`` (bytes per second).
"""

from __future__ import annotations

import json
import re
from typing import Optional

from ..core.errors import SimulationError
from ..core.units import parse_size
from .graph import DiskSpec, Network

_BIT_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([KMGT])?bit\s*$", re.IGNORECASE)


def parse_rate(value) -> float:
    """Parse a rate: a number (bytes/s), ``"10Gbit"`` or ``"120MB"``."""
    if isinstance(value, (int, float)):
        return float(value)
    m = _BIT_RE.match(value.replace("b/s", "bit").replace("bps", "bit"))
    if m:
        factor = {"K": 1e3, "M": 1e6, "G": 1e9, "T": 1e12}.get(
            (m.group(2) or "").upper(), 1.0)
        return float(m.group(1)) * factor / 8.0
    return float(parse_size(value))


def network_from_json(text: str) -> Network:
    """Build a :class:`Network` from its JSON description."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SimulationError(f"invalid topology JSON: {exc}") from exc
    net = Network(name=doc.get("name", "custom"))
    for switch in doc.get("switches", []):
        net.add_switch(switch)
    for host in doc.get("hosts", []):
        if isinstance(host, str):
            host = {"name": host}
        disk = None
        if host.get("disk"):
            d = host["disk"]
            disk = DiskSpec(
                write_bw=parse_rate(d.get("write_bw", 83.5e6)),
                seq_efficiency=float(d.get("seq_efficiency", 1.0)),
            )
        net.add_host(
            host["name"],
            nic_rate=parse_rate(host.get("nic_rate", "1Gbit")),
            copy_limit=parse_rate(host["copy_limit"])
            if "copy_limit" in host else float("inf"),
            disk=disk,
        )
    for link in doc.get("links", []):
        net.add_link(
            link["a"], link["b"],
            capacity=parse_rate(link.get("capacity", "1Gbit")),
            latency=float(link.get("latency", 5e-5)),
        )
    if not net.hosts:
        raise SimulationError("topology document declares no hosts")
    return net


def network_to_json(net: Network, indent: Optional[int] = 2) -> str:
    """Serialize a :class:`Network` back to the JSON description.

    Full-duplex links appear once (the lower-id direction of each pair).
    """
    doc = {
        "name": net.name,
        "switches": sorted(net.switches),
        "hosts": [],
        "links": [],
    }
    for host in net.hosts.values():
        entry = {"name": host.name, "nic_rate": host.nic_rate}
        if host.copy_limit != float("inf"):
            entry["copy_limit"] = host.copy_limit
        if host.disk is not None:
            entry["disk"] = {
                "write_bw": host.disk.write_bw,
                "seq_efficiency": host.disk.seq_efficiency,
            }
        doc["hosts"].append(entry)
    seen = set()
    for link in net.links:
        key = frozenset((link.src, link.dst))
        if key in seen:
            continue
        seen.add(key)
        doc["links"].append({
            "a": link.src, "b": link.dst,
            "capacity": link.capacity, "latency": link.latency,
        })
    return json.dumps(doc, indent=indent)


def load_network(path: str) -> Network:
    """Read a topology JSON file from disk."""
    with open(path) as f:
        return network_from_json(f.read())
