"""Shared helpers for simulated-method tests."""

import numpy as np
import pytest

from repro.baselines import SimSetup
from repro.core import order_by_hostname
from repro.topology import build_fat_tree


@pytest.fixture
def fat_tree_setup():
    """Factory: a 1 GbE fat-tree setup with n clients."""

    def make(n, size=2e8, **kwargs):
        net = build_fat_tree(n + 1)
        hosts = order_by_hostname(net.host_names())
        return SimSetup(
            network=net,
            head=hosts[0],
            receivers=tuple(hosts[1: n + 1]),
            size=size,
            **kwargs,
        )

    return make
