"""Tests for the shared method plumbing (SimSetup, MethodResult, model)."""

import math

import numpy as np
import pytest

from repro.baselines import KascadeSim, MethodResult, SimSetup, TakTukChain
from repro.core import KascadeError
from repro.topology import build_fat_tree
from repro.topology.graph import DiskSpec


class TestSimSetup:
    def test_head_in_receivers_rejected(self):
        net = build_fat_tree(3)
        with pytest.raises(KascadeError):
            SimSetup(network=net, head="node-1",
                     receivers=("node-1", "node-2"), size=100)

    def test_unknown_host_rejected(self):
        net = build_fat_tree(3)
        with pytest.raises(KascadeError):
            SimSetup(network=net, head="node-1", receivers=("ghost",), size=1)

    def test_negative_size_rejected(self):
        net = build_fat_tree(3)
        with pytest.raises(KascadeError):
            SimSetup(network=net, head="node-1", receivers=("node-2",), size=-1)

    def test_unknown_sink_rejected(self):
        net = build_fat_tree(3)
        with pytest.raises(KascadeError):
            SimSetup(network=net, head="node-1", receivers=("node-2",),
                     size=1, sink="tape")

    def test_chain_and_clients(self):
        net = build_fat_tree(3)
        s = SimSetup(network=net, head="node-1",
                     receivers=("node-2", "node-3"), size=1)
        assert s.chain == ("node-1", "node-2", "node-3")
        assert s.n_clients == 2


class TestMethodResult:
    def test_throughput(self):
        r = MethodResult(method="x", n_clients=1, size=1000.0,
                         startup_time=1.0, data_time=4.0)
        assert r.total_time == 5.0
        assert r.throughput == pytest.approx(200.0)

    def test_zero_time(self):
        r = MethodResult(method="x", n_clients=0, size=0.0,
                         startup_time=0.0, data_time=0.0)
        assert math.isinf(r.throughput)


class TestHostModel:
    def test_copy_budget_stamped(self, ):
        net = build_fat_tree(3)
        setup = SimSetup(network=net, head="node-1",
                         receivers=("node-2",), size=1e6)
        KascadeSim().run(setup)
        assert net.host("node-2").copy_bw == KascadeSim.copy_bw

    def test_copy_limit_respected(self):
        net = build_fat_tree(3)
        net.host("node-2").copy_limit = 1e6
        setup = SimSetup(network=net, head="node-1",
                         receivers=("node-2",), size=1e6)
        KascadeSim().run(setup)
        assert net.host("node-2").copy_bw == 1e6

    def test_disk_efficiency_stamped(self):
        net = build_fat_tree(3, disk=DiskSpec(write_bw=80e6))
        setup = SimSetup(network=net, head="node-1",
                         receivers=("node-2",), size=1e6, sink="disk")
        m = KascadeSim()
        m.run(setup)
        assert net.host("node-2").disk.seq_efficiency == m.disk_seq_efficiency
        assert net.host("node-2").disk.write_bw == 80e6

    def test_jitter_varies_with_rng(self):
        net = build_fat_tree(3)
        setup = SimSetup(network=net, head="node-1", receivers=("node-2",),
                         size=1e6, rng=np.random.default_rng(1))
        KascadeSim().run(setup)
        a = net.host("node-2").copy_bw
        assert a != KascadeSim.copy_bw  # jittered

    def test_no_rng_no_jitter(self):
        net = build_fat_tree(3)
        setup = SimSetup(network=net, head="node-1",
                         receivers=("node-2",), size=1e6)
        KascadeSim().run(setup)
        assert net.host("node-2").copy_bw == KascadeSim.copy_bw


class TestGuards:
    def test_failures_on_non_ft_method_rejected(self, ):
        net = build_fat_tree(3)
        setup = SimSetup(network=net, head="node-1", receivers=("node-2",),
                         size=1e6, failures=((1.0, "node-2"),))
        with pytest.raises(KascadeError):
            TakTukChain().run(setup)

    def test_hop_limit_formula(self):
        m = TakTukChain()
        # flat cap binds on a LAN
        assert m.hop_limit(1e-4, 125e6) == pytest.approx(42e6, rel=0.05)
        # windowing binds on a WAN
        wan = m.hop_limit(16e-3, 1.25e9)
        assert wan < 42e6
        expected = m.protocol_window / (m.protocol_window / 1.25e9 + 16e-3)
        assert wan == pytest.approx(expected)
