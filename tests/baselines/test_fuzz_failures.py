"""Randomized failure-schedule fuzzing against the simulated Kascade.

Hypothesis generates arbitrary chains and crash schedules; the invariants
are the paper's §IV-G guarantee ("in all the cases, the file was
transferred correctly") plus bookkeeping sanity:

* the simulation terminates;
* receivers partition into completed / failed / aborted / excluded;
* every completed node has a finish time within the simulated horizon;
* with a seekable source nothing ever aborts (PGET always recovers).
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import KascadeSim, SimSetup
from repro.core import KascadeConfig, order_by_hostname
from repro.core.recovery import SourceKind
from repro.topology import build_fat_tree

SIZE = 5e8
RATE = 125e6  # GbE line rate


@st.composite
def failure_schedules(draw):
    n = draw(st.integers(min_value=4, max_value=30))
    n_failures = draw(st.integers(min_value=0, max_value=min(5, n - 2)))
    victims = draw(
        st.lists(
            st.integers(min_value=2, max_value=n + 1),
            min_size=n_failures, max_size=n_failures, unique=True,
        )
    )
    events = tuple(
        (draw(st.floats(min_value=0.1, max_value=SIZE / RATE * 1.5)),
         f"node-{v}")
        for v in victims
    )
    buffer_chunks = draw(st.sampled_from([1, 2, 8, 64]))
    return n, events, buffer_chunks


def run_sim(n, events, buffer_chunks, source_kind):
    net = build_fat_tree(n + 1)
    hosts = order_by_hostname(net.host_names())
    setup = SimSetup(
        network=net, head=hosts[0], receivers=tuple(hosts[1: n + 1]),
        size=SIZE, failures=events, include_startup=False,
    )
    method = KascadeSim(
        config=KascadeConfig(buffer_chunks=buffer_chunks),
        source_kind=source_kind,
    )
    return method.run(setup)


class TestFuzzSeekableSource:
    @given(failure_schedules())
    @settings(max_examples=60, deadline=None)
    def test_invariants(self, schedule):
        n, events, buffer_chunks = schedule
        result = run_sim(n, events, buffer_chunks, SourceKind.SEEKABLE_FILE)

        receivers = {f"node-{i}" for i in range(2, n + 2)}
        completed = set(result.completed)
        failed = set(result.failed)
        aborted = set(result.aborted)

        # Partition: every receiver is in exactly one bucket.
        assert completed | failed | aborted == receivers
        assert not completed & failed
        assert not completed & aborted
        # File-backed head: PGET always recovers, nothing aborts.
        assert not aborted
        # Everyone not killed completes (§IV-G).
        scheduled_victims = {node for _t, node in events}
        assert failed <= scheduled_victims
        assert completed == receivers - failed
        # Finite, positive timing.
        assert 0 < result.data_time < 120
        for node in completed:
            assert node in result.finish_times
            assert result.finish_times[node] <= result.data_time + 1e-6


class TestFuzzStreamSource:
    @given(failure_schedules())
    @settings(max_examples=35, deadline=None)
    def test_stream_head_never_hangs(self, schedule):
        """With a stream-fed head, deep losses abort the suffix instead
        of recovering — but the run must still terminate, partition
        cleanly, and never corrupt the bookkeeping."""
        n, events, buffer_chunks = schedule
        result = run_sim(n, events, buffer_chunks, SourceKind.STREAM)

        receivers = {f"node-{i}" for i in range(2, n + 2)}
        completed = set(result.completed)
        failed = set(result.failed)
        aborted = set(result.aborted)
        assert completed | failed | aborted == receivers
        assert not completed & (failed | aborted)
        assert 0 <= result.data_time < 120
        # The first receiver can only fail if it was itself a victim.
        first = "node-2"
        victims = {node for _t, node in events}
        if first not in victims and first not in aborted:
            assert first in completed
