"""Tests for the simulated Kascade pipeline: performance mechanics and
fault-tolerance semantics on the fluid fabric."""

import pytest

from repro.baselines import KascadeSim, SimSetup
from repro.core import KascadeConfig, order_by_hostname
from repro.core.recovery import SourceKind
from repro.core.units import GIGABIT, mbps
from repro.topology import build_fat_tree


def make_setup(n, size=2e8, **kwargs):
    net = build_fat_tree(n + 1)
    hosts = order_by_hostname(net.host_names())
    kwargs.setdefault("include_startup", False)
    return SimSetup(network=net, head=hosts[0],
                    receivers=tuple(hosts[1: n + 1]), size=size, **kwargs)


class TestHappyPath:
    def test_single_client_near_line_rate(self):
        r = KascadeSim().run(make_setup(1, size=2e9))
        assert r.throughput == pytest.approx(GIGABIT, rel=0.10)
        assert r.completed == ["node-2"]

    def test_pipelining_not_serialized(self):
        # 10 clients must take barely longer than 1 (pipeline, not star).
        t1 = KascadeSim().run(make_setup(1, size=5e8)).data_time
        t10 = KascadeSim().run(make_setup(10, size=5e8)).data_time
        assert t10 < t1 * 1.3

    def test_all_clients_complete(self):
        r = KascadeSim().run(make_setup(25))
        assert len(r.completed) == 25
        assert not r.failed and not r.aborted

    def test_finish_times_monotonic_along_chain(self):
        r = KascadeSim().run(make_setup(8))
        times = [r.finish_times[f"node-{i}"] for i in range(2, 10)]
        assert times == sorted(times)

    def test_zero_byte_transfer(self):
        r = KascadeSim().run(make_setup(3, size=0.0))
        assert len(r.completed) == 3
        assert r.data_time == pytest.approx(0.0, abs=0.1)

    def test_deterministic_without_rng(self):
        a = KascadeSim().run(make_setup(10))
        b = KascadeSim().run(make_setup(10))
        assert a.data_time == b.data_time


class TestFailures:
    def test_single_failure_completes_survivors(self):
        r = KascadeSim().run(make_setup(10, size=1e9,
                                        failures=((2.0, "node-5"),)))
        assert "node-5" in r.failed
        assert len(r.completed) == 9
        assert all(n != "node-5" for n in r.completed)

    def test_failure_costs_roughly_one_timeout(self):
        base = KascadeSim().run(make_setup(10, size=1e9)).data_time
        failed = KascadeSim().run(
            make_setup(10, size=1e9, failures=((2.0, "node-5"),))
        ).data_time
        # Detection is io_timeout (1 s) + reconnect; recovery re-fetches
        # the hole, so allow up to ~3 s but demand a visible cost.
        assert base + 0.5 < failed < base + 4.0

    def test_simultaneous_cheaper_than_sequential(self):
        # The paper's §IV-G headline: staggered failures each pay their
        # own detection timeout; simultaneous ones pipeline detection.
        sim = KascadeSim().run(make_setup(
            30, size=2e9,
            failures=tuple((3.0, f"node-{i}") for i in (5, 12, 19, 26)),
        )).data_time
        seq = KascadeSim().run(make_setup(
            30, size=2e9,
            failures=tuple((3.0 + 2.5 * k, f"node-{i}")
                           for k, i in enumerate((5, 12, 19, 26))),
        )).data_time
        assert sim < seq

    def test_adjacent_failures(self):
        r = KascadeSim().run(make_setup(
            10, size=1e9, failures=((2.0, "node-5"), (2.0, "node-6")),
        ))
        assert set(r.failed) == {"node-5", "node-6"}
        assert len(r.completed) == 8

    def test_tail_failure(self):
        r = KascadeSim().run(make_setup(5, size=1e9,
                                        failures=((2.0, "node-6"),)))
        assert r.failed == ["node-6"]
        assert len(r.completed) == 4

    def test_first_receiver_failure(self):
        r = KascadeSim().run(make_setup(5, size=1e9,
                                        failures=((2.0, "node-2"),)))
        assert r.failed == ["node-2"]
        assert len(r.completed) == 4

    def test_late_failure_after_node_served(self):
        # Node dies after receiving everything but while the chain is
        # still running: downstream must still be re-served.
        r = KascadeSim().run(make_setup(
            20, size=2e9, failures=((10.0, "node-3"),),
        ))
        assert "node-3" in r.failed
        assert len(r.completed) == 19

    def test_stream_source_aborts_suffix_on_deep_loss(self):
        # Tiny buffer + long detection: the replacement's offset falls
        # behind the window and the head cannot re-read -> the orphaned
        # suffix aborts instead of deadlocking (§III-D2 FORGET).
        method = KascadeSim(
            config=KascadeConfig(chunk_size=1 << 20, buffer_chunks=1,
                                 io_timeout=3.0),
            source_kind=SourceKind.STREAM,
        )
        r = method.run(make_setup(10, size=2e9, failures=((2.0, "node-5"),)))
        assert "node-5" in r.failed
        assert r.aborted, "expected the suffix to abort on FORGET"
        # Nodes before the failure still complete.
        assert "node-2" in r.completed
        # No aborted node is reported complete.
        assert not set(r.aborted) & set(r.completed)

    def test_file_source_deep_loss_recovers_via_pget(self):
        method = KascadeSim(
            config=KascadeConfig(chunk_size=1 << 20, buffer_chunks=1,
                                 io_timeout=3.0),
            source_kind=SourceKind.SEEKABLE_FILE,
        )
        r = method.run(make_setup(10, size=2e9, failures=((2.0, "node-5"),)))
        assert r.failed == ["node-5"]
        assert not r.aborted
        assert len(r.completed) == 9


class TestOrderingSensitivity:
    def test_random_order_slower_on_fat_tree(self):
        import numpy as np
        from repro.core import order_randomly
        net = build_fat_tree(91)
        hosts = order_by_hostname(net.host_names())
        ordered = SimSetup(network=net, head=hosts[0],
                           receivers=tuple(hosts[1:]), size=1e9,
                           include_startup=False)
        shuffled = SimSetup(
            network=build_fat_tree(91), head=hosts[0],
            receivers=tuple(order_randomly(hosts[1:],
                                           np.random.default_rng(3))),
            size=1e9, include_startup=False,
        )
        good = KascadeSim().run(ordered).throughput
        bad = KascadeSim().run(shuffled).throughput
        assert bad < good * 0.7, (mbps(good), mbps(bad))


class TestRegressionZombieRecovery:
    def test_dead_recovery_server_does_not_blame_its_target(self):
        """Fuzz-found: a node dies while a *recovery* process is serving
        on its behalf; the zombie's failed open_stream must not mark the
        innocent target dead (it once flagged the tail as failed)."""
        events = ((0.25, "node-2"), (4.0, "node-20"),
                  (2.0, "node-22"), (1.0, "node-21"))
        method = KascadeSim(config=KascadeConfig(buffer_chunks=1))
        r = method.run(make_setup(22, size=5e8, failures=events))
        assert set(r.failed) == {"node-2", "node-20", "node-21", "node-22"}
        assert "node-23" in r.completed
        assert len(r.completed) == 18
