"""Tests for the §II-B related-work methods (BitTorrent swarm, Dolly)."""

import numpy as np
import pytest

from repro.baselines import BitTorrentSwarm, DollyChain, KascadeSim, SimSetup
from repro.core import KascadeError, order_by_hostname, order_randomly
from repro.core.units import mbps
from repro.topology import build_fat_tree


def make_setup(n, size=5e8, **kwargs):
    net = build_fat_tree(n + 1)
    hosts = order_by_hostname(net.host_names())
    kwargs.setdefault("include_startup", False)
    return SimSetup(network=net, head=hosts[0],
                    receivers=tuple(hosts[1: n + 1]), size=size, **kwargs)


class TestBitTorrent:
    def test_cited_throughput(self):
        # "BitTorrent only achieves a maximum throughput of about 12 MB/s"
        r = BitTorrentSwarm().run(make_setup(20, size=2e9))
        assert 10 < mbps(r.throughput) < 16

    def test_flat_with_scale(self):
        small = BitTorrentSwarm().run(make_setup(10, size=2e9)).throughput
        large = BitTorrentSwarm().run(make_setup(90, size=2e9)).throughput
        assert large > 0.8 * small

    def test_all_peers_complete(self):
        r = BitTorrentSwarm().run(make_setup(15))
        assert len(r.completed) == 15

    def test_swarm_order_randomized_from_rng(self):
        # Different seeds shuffle the internal peer order -> slightly
        # different finish-time patterns, same completion set.
        a = BitTorrentSwarm().run(
            make_setup(12, rng=np.random.default_rng(1)))
        b = BitTorrentSwarm().run(
            make_setup(12, rng=np.random.default_rng(2)))
        assert set(a.completed) == set(b.completed)
        assert a.finish_times != b.finish_times

    def test_indifferent_to_operator_ordering(self):
        # BT ignores topology ordering: shuffling the input leaves its
        # throughput in the same (low) band.
        net = build_fat_tree(61)
        hosts = order_by_hostname(net.host_names())
        shuffled = order_randomly(hosts[1:], np.random.default_rng(3))
        setup = SimSetup(network=net, head=hosts[0],
                         receivers=tuple(shuffled), size=2e9,
                         include_startup=False,
                         rng=np.random.default_rng(3))
        r = BitTorrentSwarm().run(setup)
        assert 9 < mbps(r.throughput) < 17

    def test_no_fault_tolerance(self):
        with pytest.raises(KascadeError):
            BitTorrentSwarm().run(make_setup(5, failures=((1.0, "node-3"),)))


class TestDolly:
    def test_matches_kascade_wire_rate(self):
        dolly = DollyChain().run(make_setup(10, size=2e9))
        kascade = KascadeSim().run(make_setup(10, size=2e9))
        assert mbps(dolly.throughput) == pytest.approx(
            mbps(kascade.throughput), rel=0.1)

    def test_sequential_startup_hurts_at_scale(self):
        small = DollyChain().run(
            make_setup(10, size=2e9, include_startup=True))
        large = DollyChain().run(
            make_setup(100, size=2e9, include_startup=True))
        assert large.startup_time > 3 * small.startup_time
        assert mbps(large.throughput) < 0.6 * mbps(small.throughput)

    def test_no_fault_tolerance(self):
        # "(3) Dolly and Ka do not provide any fault-tolerance mechanism"
        with pytest.raises(KascadeError):
            DollyChain().run(make_setup(5, failures=((1.0, "node-3"),)))

    def test_all_complete_on_healthy_cluster(self):
        r = DollyChain().run(make_setup(9))
        assert len(r.completed) == 9
