"""Tests for slow-node detection and exclusion — the paper's §V future
work ("detect malfunctioning nodes ... and exclude them from the
transfer if their performance is lower than a specific threshold")."""

import pytest

from repro.baselines import KascadeSim, SimSetup, SlowNodePolicy
from repro.core import KascadeError, order_by_hostname
from repro.core.units import mbps
from repro.topology import build_fat_tree


def setup_with_laggard(n=20, laggard="node-10", laggard_copy=30e6, size=2e9):
    net = build_fat_tree(n + 1)
    if laggard:
        net.host(laggard).copy_limit = laggard_copy
    hosts = order_by_hostname(net.host_names())
    return SimSetup(network=net, head=hosts[0],
                    receivers=tuple(hosts[1: n + 1]), size=size,
                    include_startup=False)


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"threshold": 0.0},
        {"threshold": -1.0},
        {"threshold": 1e6, "grace": 0.0},
        {"threshold": 1e6, "check_interval": -1.0},
    ])
    def test_invalid_policy(self, kwargs):
        with pytest.raises(KascadeError):
            SlowNodePolicy(**kwargs)


class TestWithoutExclusion:
    def test_one_laggard_drags_whole_pipeline(self):
        """The problem statement of §V: one slow node caps everything
        after it, so the broadcast completes at the laggard's rate."""
        r = KascadeSim().run(setup_with_laggard())
        assert mbps(r.throughput) < 25  # ~15 MB/s relay, not ~117
        assert len(r.completed) == 20
        assert not r.excluded


class TestWithExclusion:
    def test_laggard_excluded_throughput_restored(self):
        policy = SlowNodePolicy(threshold=40e6, grace=3.0)
        r = KascadeSim(slow_policy=policy).run(setup_with_laggard())
        assert r.excluded == ["node-10"]
        assert len(r.completed) == 19
        assert "node-10" not in r.completed
        # Most of the transfer runs at full pipeline speed again.
        assert mbps(r.throughput) > 60

    def test_healthy_pipeline_untouched(self):
        """No false positives: without a laggard nobody is excluded."""
        policy = SlowNodePolicy(threshold=40e6, grace=3.0)
        r = KascadeSim(slow_policy=policy).run(
            setup_with_laggard(laggard=None))
        assert not r.excluded
        assert len(r.completed) == 20
        assert mbps(r.throughput) > 100

    def test_only_culprit_excluded_not_starved_successors(self):
        """Nodes downstream of the laggard also *receive* slowly, but a
        starved sender must not blame its own receiver — exactly one
        exclusion happens."""
        policy = SlowNodePolicy(threshold=40e6, grace=3.0)
        r = KascadeSim(slow_policy=policy).run(
            setup_with_laggard(n=30, laggard="node-15"))
        assert r.excluded == ["node-15"]
        assert len(r.completed) == 29

    def test_exclusion_recorded_separately_from_failures(self):
        policy = SlowNodePolicy(threshold=40e6, grace=3.0)
        r = KascadeSim(slow_policy=policy).run(setup_with_laggard())
        assert r.excluded == ["node-10"]
        assert not r.failed
        assert not r.aborted

    def test_exclusion_with_crash_failures_combined(self):
        """A crash and a laggard in the same run: the crash is detected
        by timeout, the laggard by throughput, independently."""
        policy = SlowNodePolicy(threshold=40e6, grace=3.0)
        setup = setup_with_laggard(n=30, laggard="node-15")
        setup = SimSetup(
            network=setup.network, head=setup.head,
            receivers=setup.receivers, size=setup.size,
            include_startup=False,
            failures=((6.0, "node-25"),),
        )
        r = KascadeSim(slow_policy=policy).run(setup)
        assert r.excluded == ["node-15"]
        assert r.failed == ["node-25"]
        assert len(r.completed) == 28

    def test_threshold_below_laggard_rate_no_exclusion(self):
        """A lenient threshold tolerates the slow node (tuning knob)."""
        policy = SlowNodePolicy(threshold=5e6, grace=3.0)
        r = KascadeSim(slow_policy=policy).run(setup_with_laggard())
        assert not r.excluded
        assert len(r.completed) == 20
