"""Tests for the baseline methods: TakTuk chain/tree, MPI, UDPCast."""

import pytest

from repro.baselines import (
    MpiEthernet,
    MpiInfiniband,
    SimSetup,
    TakTukChain,
    TakTukTree,
    UdpcastSim,
)
from repro.core import order_by_hostname
from repro.core.units import mbps
from repro.topology import build_fat_tree, build_two_switch


def make_setup(n, size=2e8, net=None, **kwargs):
    net = net or build_fat_tree(n + 1)
    hosts = order_by_hostname(net.host_names())
    kwargs.setdefault("include_startup", False)
    return SimSetup(network=net, head=hosts[0],
                    receivers=tuple(hosts[1: n + 1]), size=size, **kwargs)


class TestTreeStructure:
    def test_contiguous_split_chain(self):
        from repro.baselines.trees import _TreeRun
        from repro.simnet import Engine, Fabric
        setup = make_setup(5)
        run = _TreeRun(TakTukChain(), Engine(), Fabric(Engine(), setup.network), setup)
        # arity 1: a pure chain
        for i in range(5):
            assert run.children_of(i) == [i + 1]
        assert run.children_of(5) == []
        assert run.depth_of(5) == 5

    def test_contiguous_split_binary(self):
        from repro.baselines.trees import _TreeRun
        from repro.simnet import Engine, Fabric
        setup = make_setup(6)
        run = _TreeRun(TakTukTree(), Engine(), Fabric(Engine(), setup.network), setup)
        # Root splits [1..6] into [1..3] and [4..6].
        assert run.children_of(0) == [1, 4]
        assert run.children_of(1) == [2, 4][0:1] + [3][0:1]  # [2, 3]
        all_children = [c for i in range(7) for c in run.children_of(i)]
        assert sorted(all_children) == list(range(1, 7))  # spanning tree

    def test_heap_layout(self):
        from repro.baselines.trees import _TreeRun
        from repro.simnet import Engine, Fabric
        setup = make_setup(6)
        run = _TreeRun(MpiInfiniband(), Engine(), Fabric(Engine(), setup.network), setup)
        assert run.children_of(0) == [1, 2]
        assert run.children_of(1) == [3, 4]
        assert run.children_of(2) == [5, 6]

    def test_contiguous_subtrees_stay_on_switches(self):
        # With 2 hosts/switch and a sorted order, the contiguous-split
        # tree crosses switches O(#switches) times, not O(n).
        from repro.baselines.trees import _TreeRun
        from repro.simnet import Engine, Fabric
        net = build_fat_tree(16, hosts_per_switch=4)
        setup = make_setup(15, net=net)
        run = _TreeRun(TakTukTree(), Engine(), Fabric(Engine(), net), setup)
        crossings = 0
        for i in range(16):
            for c in run.children_of(i):
                a, b = setup.chain[i], setup.chain[c]
                if net.host(a).switch != net.host(b).switch:
                    crossings += 1
        # bounded by ~2 per switch, far below the n-1 = 15 worst case
        assert crossings <= 8


class TestTakTuk:
    def test_hop_cap_binds(self):
        r = TakTukChain().run(make_setup(10, size=5e8))
        assert mbps(r.throughput) == pytest.approx(40, abs=5)

    def test_flat_with_scale(self):
        small = TakTukChain().run(make_setup(5, size=5e8)).throughput
        large = TakTukChain().run(make_setup(60, size=5e8)).throughput
        assert large > small * 0.85

    def test_tree_roughly_equal_to_chain(self):
        # "Both variations of TakTuk perform equally bad" (§IV-A).
        chain = TakTukChain().run(make_setup(60, size=5e8)).throughput
        tree = TakTukTree().run(make_setup(60, size=5e8)).throughput
        assert tree == pytest.approx(chain, rel=0.25)

    def test_all_complete(self):
        r = TakTukTree().run(make_setup(30))
        assert len(r.completed) == 30


class TestMpi:
    def test_ethernet_near_line_rate_on_lan(self):
        r = MpiEthernet().run(make_setup(50, size=2e9))
        assert mbps(r.throughput) > 95

    def test_infiniband_collapses_past_one_switch(self):
        small = MpiInfiniband().run(
            make_setup(80, size=2e9, net=build_two_switch(81))
        ).throughput
        large = MpiInfiniband().run(
            make_setup(200, size=2e9, net=build_two_switch(201))
        ).throughput
        assert mbps(small) > 400
        assert large < small * 0.2

    def test_all_complete(self):
        r = MpiEthernet().run(make_setup(30))
        assert len(r.completed) == 30


class TestUdpcast:
    def test_single_transmission_rate(self):
        r = UdpcastSim().run(make_setup(10, size=2e9))
        assert mbps(r.throughput) > 100

    def test_sync_degrades_at_scale(self):
        at_50 = UdpcastSim().run(make_setup(50, size=2e9)).throughput
        at_200 = UdpcastSim().run(make_setup(200, size=2e9)).throughput
        assert at_200 < at_50 * 0.6

    def test_sync_time_monotonic(self):
        m = UdpcastSim()
        times = [m.sync_time(n, 1e-4) for n in (1, 50, 100, 200)]
        assert times == sorted(times)

    def test_not_routed(self):
        assert not UdpcastSim.supports_routed

    def test_all_complete(self):
        r = UdpcastSim().run(make_setup(20))
        assert len(r.completed) == 20


class TestUdpcastUnidirectional:
    """§II-B: the no-return-channel mode 'requires a lot of tuning' and
    the sender cannot know whether receivers got the data."""

    def _run(self, rate, fec, seed=1, n=50):
        import numpy as np
        from repro.baselines import UdpcastUnidirectional
        setup = make_setup(n, size=2e9, rng=np.random.default_rng(seed))
        return UdpcastUnidirectional(send_rate=rate, fec_overhead=fec).run(setup)

    def test_conservative_tuning_is_reliable_but_slow(self):
        r = self._run(rate=85e6, fec=0.10)
        assert len(r.completed) == 50
        assert not r.aborted
        # The price: well under the ~117 MB/s the feedback mode reaches.
        assert mbps(r.throughput) < 90

    def test_aggressive_tuning_silently_loses_receivers(self):
        r = self._run(rate=122e6, fec=0.05)
        assert r.aborted, "pushing the line rate must cost receivers"
        # And crucially: they are ABORTED (incomplete), not failed —
        # nothing in the protocol told the sender.
        assert not r.failed

    def test_more_fec_buys_reliability_at_a_rate_cost(self):
        lean = self._run(rate=116e6, fec=0.02)
        padded = self._run(rate=116e6, fec=0.30)
        assert len(padded.completed) > len(lean.completed)
        assert padded.throughput < 116e6 / 1.2  # overhead tax

    def test_deterministic_given_seed(self):
        a = self._run(rate=116e6, fec=0.05, seed=3)
        b = self._run(rate=116e6, fec=0.05, seed=3)
        assert a.completed == b.completed
        assert a.aborted == b.aborted

    def test_no_feedback_no_failures_reported(self):
        r = self._run(rate=125e6, fec=0.02)
        assert not r.failed  # nothing is ever *detected*
        assert r.data_time > 0
