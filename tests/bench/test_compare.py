"""Tests for the result-set comparison (regression) tool."""

import pytest

from repro.bench.compare import DiffReport, PointDiff, diff_results, diff_stores
from repro.bench.figures import FigureResult
from repro.bench.runner import Measurement
from repro.bench.stats import ConfidenceInterval
from repro.bench.store import FigureStore


def result_with(means, hw=1.0, figure="Fig. T"):
    result = FigureResult(figure=figure, title="t", x_label="n")
    result.series["M"] = [
        Measurement("M", x, ConfidenceInterval(mean, hw, 3))
        for x, mean in means.items()
    ]
    return result


class TestPointDiff:
    def test_rel_change(self):
        d = PointDiff("f", "m", 1, old_mean=100.0, new_mean=110.0,
                      old_hw=1.0, new_hw=1.0)
        assert d.rel_change == pytest.approx(0.10)

    def test_significance_vs_intervals(self):
        inside = PointDiff("f", "m", 1, 100.0, 101.5, old_hw=1.0, new_hw=1.0)
        outside = PointDiff("f", "m", 1, 100.0, 103.0, old_hw=1.0, new_hw=1.0)
        assert not inside.significant
        assert outside.significant

    def test_zero_baseline(self):
        d = PointDiff("f", "m", 1, 0.0, 5.0, 0.0, 0.0)
        assert d.rel_change == float("inf")


class TestDiffResults:
    def test_matched_points(self):
        old = result_with({1: 100.0, 50: 90.0})
        new = result_with({1: 100.5, 50: 80.0})
        diffs = diff_results(old, new)
        assert len(diffs) == 2
        by_x = {d.x: d for d in diffs}
        assert not by_x[1].significant
        assert by_x[50].significant

    def test_missing_method_skipped(self):
        old = result_with({1: 100.0})
        new = FigureResult(figure="Fig. T", title="t", x_label="n")
        new.series["Other"] = [
            Measurement("Other", 1, ConfidenceInterval(50.0, 1.0, 3))
        ]
        assert diff_results(old, new) == []

    def test_missing_x_skipped(self):
        old = result_with({1: 100.0, 2: 100.0})
        new = result_with({1: 100.0})
        assert len(diff_results(old, new)) == 1


class TestDiffStores:
    def test_store_comparison(self, tmp_path):
        old_dir, new_dir = tmp_path / "old", tmp_path / "new"
        FigureStore(str(old_dir)).save("figA", result_with({1: 100.0}))
        FigureStore(str(new_dir)).save("figA", result_with({1: 120.0}))
        FigureStore(str(new_dir)).save("figB", result_with({1: 50.0}))
        report = diff_stores(str(old_dir), str(new_dir))
        assert not report.clean
        assert len(report.significant) == 1
        assert report.only_new == ["figB"]
        text = report.format()
        assert "+20.0%" in text

    def test_clean_when_within_intervals(self, tmp_path):
        old_dir, new_dir = tmp_path / "old", tmp_path / "new"
        FigureStore(str(old_dir)).save("figA", result_with({1: 100.0}, hw=3.0))
        FigureStore(str(new_dir)).save("figA", result_with({1: 102.0}, hw=3.0))
        report = diff_stores(str(old_dir), str(new_dir))
        assert report.clean
        assert "all within confidence intervals" in report.format()

    def test_missing_figure_not_clean(self, tmp_path):
        old_dir, new_dir = tmp_path / "old", tmp_path / "new"
        FigureStore(str(old_dir)).save("figA", result_with({1: 100.0}))
        FigureStore(str(new_dir))  # empty
        report = diff_stores(str(old_dir), str(new_dir))
        assert not report.clean
        assert "missing from new run: figA" in report.format()


class TestCli:
    def test_diff_cli(self, tmp_path, capsys):
        from repro.cli.kascade_sim import main as sim_main
        old_dir, new_dir = tmp_path / "old", tmp_path / "new"
        FigureStore(str(old_dir)).save("figA", result_with({1: 100.0}))
        FigureStore(str(new_dir)).save("figA", result_with({1: 100.2}))
        rc = sim_main(["diff", str(old_dir), str(new_dir)])
        assert rc == 0
        rc = sim_main(["diff", str(old_dir), str(tmp_path / "empty")])
        assert rc == 1

    def test_proto_cli(self, capsys):
        from repro.cli.kascade_sim import main as sim_main
        rc = sim_main(["proto", "--nodes", "3", "--size", "512KB",
                       "--kill", "n3@50%", "--msc"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "failed node(s): n3" in out
        assert "GET(0)" in out  # the chart

    def test_proto_bad_kill_spec(self):
        from repro.cli.kascade_sim import main as sim_main
        with pytest.raises(SystemExit):
            sim_main(["proto", "--kill", "garbage"])
