"""Tests for figure export (CSV/JSON) and terminal plotting."""

import csv
import io
import json

import pytest

from repro.bench import ascii_plot, flatten, to_csv, to_json
from repro.bench.figures import FigureResult
from repro.bench.runner import Measurement
from repro.bench.stats import ConfidenceInterval


def tiny_result():
    result = FigureResult(figure="Fig. X", title="test figure", x_label="clients")
    result.series["MethodA"] = [
        Measurement("MethodA", 1, ConfidenceInterval(100.0, 2.0, 5)),
        Measurement("MethodA", 50, ConfidenceInterval(90.0, 1.0, 5)),
        Measurement("MethodA", 200, ConfidenceInterval(80.5, 0.5, 5)),
    ]
    result.series["MethodB"] = [
        Measurement("MethodB", 1, ConfidenceInterval(40.0, 1.0, 5)),
        Measurement("MethodB", 50, ConfidenceInterval(40.0, 1.0, 5)),
        Measurement("MethodB", 200, ConfidenceInterval(39.0, 0.8, 5)),
    ]
    return result


class TestCsv:
    def test_structure(self):
        text = to_csv(tiny_result())
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 6
        assert rows[0]["figure"] == "Fig. X"
        assert rows[0]["method"] == "MethodA"
        assert float(rows[0]["mean_mbs"]) == 100.0
        assert int(rows[0]["repetitions"]) == 5

    def test_all_xs_present(self):
        rows = list(csv.DictReader(io.StringIO(to_csv(tiny_result()))))
        xs = {r["x"] for r in rows}
        assert xs == {"1", "50", "200"}


class TestJson:
    def test_roundtrip(self):
        doc = json.loads(to_json(tiny_result()))
        assert doc["figure"] == "Fig. X"
        assert doc["unit"] == "MB/s"
        assert len(doc["series"]["MethodA"]) == 3
        point = doc["series"]["MethodB"][2]
        assert point == {
            "x": 200, "mean": 39.0, "ci_half_width": 0.8, "repetitions": 5,
        }


class TestFlatten:
    def test_rows(self):
        rows = flatten(tiny_result())
        assert len(rows) == 6
        assert {r["method"] for r in rows} == {"MethodA", "MethodB"}


class TestAsciiPlot:
    def test_contains_series_markers_and_legend(self):
        text = ascii_plot(tiny_result())
        assert "o MethodA" in text
        assert "x MethodB" in text
        assert "MB/s" in text

    def test_axis_labels(self):
        text = ascii_plot(tiny_result())
        assert "(clients)" in text
        assert "200" in text  # last x tick

    def test_higher_series_plots_higher(self):
        lines = ascii_plot(tiny_result(), height=16).split("\n")
        # Find first row containing 'o' (MethodA, ~100) and 'x' (~40).
        first_o = next(i for i, l in enumerate(lines) if "o" in l and "|" in l)
        first_x = next(i for i, l in enumerate(lines)
                       if "x" in l and "|" in l and "MethodB" not in l)
        assert first_o < first_x

    def test_empty_series(self):
        result = FigureResult(figure="Fig. E", title="empty", x_label="n")
        assert "(no data)" in ascii_plot(result)

    def test_single_point(self):
        result = FigureResult(figure="Fig. S", title="one", x_label="n")
        result.series["M"] = [
            Measurement("M", 7, ConfidenceInterval(10.0, 0.0, 1))
        ]
        text = ascii_plot(result)
        assert "o M" in text


class TestCliIntegration:
    def test_run_with_export(self, tmp_path, capsys):
        from repro.cli.kascade_sim import main as sim_main
        rc = sim_main([
            "run", "fig15", "--quick", "--reps", "1",
            "--plot", "--csv", str(tmp_path), "--json", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "o Kascade" in out  # the plot
        csv_text = (tmp_path / "fig15.csv").read_text()
        assert "no failure" in csv_text
        doc = json.loads((tmp_path / "fig15.json").read_text())
        assert doc["figure"] == "Fig. 15"


class TestRendererRobustness:
    """Renderers must never crash, whatever shape the data has."""

    @pytest.mark.parametrize("means", [
        {0: 0.0},                      # zero-valued point
        {0: 1e-12, 1: 1e12},           # extreme dynamic range
        {"label with spaces": 5.0},    # non-numeric x
    ])
    def test_ascii_plot_odd_inputs(self, means):
        from repro.bench.runner import Measurement
        from repro.bench.stats import ConfidenceInterval
        result = FigureResult(figure="Fig. R", title="odd", x_label="x")
        result.series["M"] = [
            Measurement("M", x, ConfidenceInterval(v, 0.0, 1))
            for x, v in means.items()
        ]
        text = ascii_plot(result)
        assert "Fig. R" in text

    def test_plot_many_series_markers_cycle(self):
        from repro.bench.runner import Measurement
        from repro.bench.stats import ConfidenceInterval
        result = FigureResult(figure="Fig. S", title="many", x_label="x")
        for i in range(8):
            result.series[f"M{i}"] = [
                Measurement(f"M{i}", 0, ConfidenceInterval(float(i + 1), 0, 1))
            ]
        text = ascii_plot(result)
        for i in range(8):
            assert f"M{i}" in text
