"""Tests for the experiment runner and figure definitions."""

import pytest

from repro.baselines import KascadeSim, SimSetup
from repro.bench import ExperimentRunner, FIGURES, fig12_site_map
from repro.bench.figures import fig15_fault_tolerance
from repro.core import order_by_hostname
from repro.topology import build_fat_tree


def tiny_setup_factory(rng):
    net = build_fat_tree(4)
    hosts = order_by_hostname(net.host_names())
    return SimSetup(network=net, head=hosts[0], receivers=tuple(hosts[1:]),
                    size=1e8, rng=rng)


class TestRunner:
    def test_repetitions_recorded(self):
        runner = ExperimentRunner(repetitions=4)
        m = runner.measure(KascadeSim, tiny_setup_factory, x=3)
        assert len(m.results) == 4
        assert m.ci.n == 4
        assert m.method == "Kascade"
        assert m.x == 3

    def test_deterministic_given_seed(self):
        a = ExperimentRunner(repetitions=3, base_seed=7).measure(
            KascadeSim, tiny_setup_factory, x=1)
        b = ExperimentRunner(repetitions=3, base_seed=7).measure(
            KascadeSim, tiny_setup_factory, x=1)
        assert a.ci.mean == b.ci.mean

    def test_different_seed_different_values(self):
        a = ExperimentRunner(repetitions=3, base_seed=7).measure(
            KascadeSim, tiny_setup_factory, x=1)
        b = ExperimentRunner(repetitions=3, base_seed=8).measure(
            KascadeSim, tiny_setup_factory, x=1)
        assert a.ci.mean != b.ci.mean

    def test_jitter_gives_variance(self):
        m = ExperimentRunner(repetitions=5).measure(
            KascadeSim, tiny_setup_factory, x=1)
        assert m.ci.half_width > 0

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            ExperimentRunner(repetitions=0)

    def test_sweep(self):
        runner = ExperimentRunner(repetitions=2)
        out = runner.sweep(KascadeSim, [(1, tiny_setup_factory),
                                        (2, tiny_setup_factory)])
        assert [m.x for m in out] == [1, 2]


class TestFigureRegistry:
    def test_all_evaluation_figures_present(self):
        assert set(FIGURES) == {
            "fig07", "fig07_10x", "fig08", "fig09", "fig10", "fig11",
            "fig13", "fig14", "fig15",
        }

    def test_fig12_site_map_text(self):
        text = fig12_site_map()
        assert "used 5x" in text      # Paris-Lyon reused five times
        assert "lyon-paris" in text

    def test_format_table_contains_methods(self):
        # The cheapest figure end-to-end: Fig. 15 with 1 repetition.
        result = fig15_fault_tolerance(quick=True, repetitions=1)
        table = result.format_table()
        assert "Kascade" in table
        assert "no failure" in table
        assert "10% seq." in table
        assert result.means("Kascade")  # non-empty series

    def test_figure_result_accessors(self):
        result = fig15_fault_tolerance(quick=True, repetitions=1)
        xs = result.xs("Kascade")
        assert xs[0] == "no failure"
        assert len(xs) == 7
