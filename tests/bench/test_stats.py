"""Tests for the Student-t confidence interval helper."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bench import ConfidenceInterval, t_confidence


class TestTConfidence:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            t_confidence([])

    def test_single_value_zero_width(self):
        ci = t_confidence([42.0])
        assert ci.mean == 42.0
        assert ci.half_width == 0.0
        assert ci.n == 1

    def test_identical_values_zero_width(self):
        ci = t_confidence([5.0, 5.0, 5.0])
        assert ci.mean == 5.0
        assert ci.half_width == pytest.approx(0.0, abs=1e-12)

    def test_known_case(self):
        # Two points a, b: mean (a+b)/2; half-width = t(0.975, df=1) * sem.
        ci = t_confidence([10.0, 20.0])
        assert ci.mean == 15.0
        # sem = std(ddof=1)/sqrt(2) = (7.0711)/1.4142 = 5; t=12.706
        assert ci.half_width == pytest.approx(12.706 * 5.0, rel=1e-3)

    def test_bounds(self):
        ci = ConfidenceInterval(10.0, 2.0, 5)
        assert ci.low == 8.0
        assert ci.high == 12.0
        assert "10.0 ± 2.0" == str(ci)

    def test_more_samples_tighter(self):
        rng = np.random.default_rng(0)
        pop = rng.normal(100, 10, size=1000)
        small = t_confidence(pop[:5])
        large = t_confidence(pop[:100])
        assert large.half_width < small.half_width

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_mean_inside_interval(self, values):
        ci = t_confidence(values)
        assert ci.low <= ci.mean <= ci.high
        assert ci.half_width >= 0

    def test_level_parameter(self):
        vals = [1.0, 2.0, 3.0, 4.0, 5.0]
        wide = t_confidence(vals, level=0.99)
        narrow = t_confidence(vals, level=0.80)
        assert wide.half_width > narrow.half_width
