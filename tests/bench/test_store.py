"""Tests for the on-disk figure store (resume support)."""

import json

import pytest

from repro.bench.export import to_json
from repro.bench.figures import FigureResult
from repro.bench.runner import Measurement
from repro.bench.stats import ConfidenceInterval
from repro.bench.store import FigureStore, figure_result_from_json


def tiny_result():
    result = FigureResult(figure="Fig. T", title="store test",
                          x_label="clients", notes="a note")
    result.series["M"] = [
        Measurement("M", 1, ConfidenceInterval(100.0, 2.5, 5)),
        Measurement("M", "label-x", ConfidenceInterval(90.0, 1.0, 5)),
    ]
    return result


class TestRoundtrip:
    def test_json_roundtrip(self):
        original = tiny_result()
        restored = figure_result_from_json(to_json(original))
        assert restored.figure == original.figure
        assert restored.title == original.title
        assert restored.notes == "a note"
        assert restored.xs("M") == [1, "label-x"]
        assert restored.means("M") == [100.0, 90.0]
        assert restored.series["M"][0].ci.half_width == 2.5
        assert restored.series["M"][0].ci.n == 5

    def test_restored_result_formats_and_plots(self):
        from repro.bench import ascii_plot
        restored = figure_result_from_json(to_json(tiny_result()))
        assert "Fig. T" in restored.format_table()
        assert "o M" in ascii_plot(restored)


class TestStore:
    def test_save_load(self, tmp_path):
        store = FigureStore(str(tmp_path))
        assert not store.has("figT")
        assert store.load("figT") is None
        path = store.save("figT", tiny_result())
        assert store.has("figT")
        loaded = store.load("figT")
        assert loaded.means("M") == [100.0, 90.0]
        assert path.endswith("figT.json")

    def test_corrupt_entry_is_miss(self, tmp_path):
        store = FigureStore(str(tmp_path))
        (tmp_path / "bad.json").write_text("{not json")
        assert store.load("bad") is None

    def test_keys(self, tmp_path):
        store = FigureStore(str(tmp_path))
        store.save("figA", tiny_result())
        store.save("figB", tiny_result())
        assert list(store.keys()) == ["figA", "figB"]

    def test_atomic_no_tmp_left(self, tmp_path):
        store = FigureStore(str(tmp_path))
        store.save("figT", tiny_result())
        assert not any(p.suffix == ".tmp" for p in tmp_path.iterdir())


class TestCliCache:
    def test_second_run_hits_cache(self, tmp_path, capsys):
        from repro.cli.kascade_sim import main as sim_main
        args = ["run", "fig15", "--quick", "--reps", "1",
                "--cache", str(tmp_path)]
        assert sim_main(args) == 0
        first = capsys.readouterr().out
        assert "regenerated in" in first
        assert sim_main(args) == 0
        second = capsys.readouterr().out
        assert "loaded from cache" in second
        # Same table either way.
        assert "no failure" in second
