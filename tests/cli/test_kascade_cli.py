"""Tests for the ``kascade`` command-line interface."""

import threading

import pytest

from repro.cli.kascade import main, parse_chaos, parse_registry
from repro.runtime.transport import Address


class TestParseChaos:
    def test_node_and_size(self):
        (plan,) = parse_chaos(["n3:1MiB"])
        assert (plan.node, plan.after_bytes, plan.sig) == ("n3", 1 << 20,
                                                           "kill")

    def test_explicit_signal(self):
        (plan,) = parse_chaos(["n3:64KiB:stop"])
        assert plan.sig == "stop"

    def test_head_role_resolves_to_the_head_node(self):
        (plan,) = parse_chaos(["head:4MiB"], head="n1")
        assert plan.node == "n1"
        assert plan.after_bytes == 4 << 20
        # Without a head binding the literal name passes through (and
        # will be rejected downstream as an unknown node).
        assert parse_chaos(["head:4MiB"])[0].node == "head"

    def test_replica_targets_keep_their_colon(self):
        (plan,) = parse_chaos(["replica:0:1MiB"])
        assert (plan.node, plan.after_bytes, plan.sig) == ("replica:0",
                                                           1 << 20, "kill")
        (stopped,) = parse_chaos(["replica:2:512KiB:stop"])
        assert (stopped.node, stopped.sig) == ("replica:2", "stop")

    def test_bad_entries_exit(self):
        for bad in ("n3", "n3:1MiB:stop:extra", "n3:not-a-size",
                    "n3:1MiB:term"):
            with pytest.raises(SystemExit, match="chaos"):
                parse_chaos([bad])

    def test_empty_and_none(self):
        assert parse_chaos([]) == []
        assert parse_chaos(None) == []


class TestParseRegistry:
    def test_basic(self):
        names, addrs = parse_registry("n1=10.0.0.1:3640,n2=10.0.0.2:3641")
        assert names == ["n1", "n2"]
        assert addrs["n1"] == Address("10.0.0.1", 3640)
        assert addrs["n2"].port == 3641

    def test_whitespace_tolerated(self):
        names, _ = parse_registry(" n1=h:1 , n2=h:2 ")
        assert names == ["n1", "n2"]

    def test_bad_entry(self):
        with pytest.raises(SystemExit):
            parse_registry("n1=oops")
        with pytest.raises(SystemExit):
            parse_registry("garbage")

    def test_single_node_rejected(self):
        with pytest.raises(SystemExit):
            parse_registry("n1=h:1")

    def test_ipv6ish_host(self):
        _, addrs = parse_registry("n1=host.example:1,n2=other:2")
        assert addrs["n1"].host == "host.example"


class TestDemo:
    def test_demo_to_files(self, tmp_path, capsys):
        src = tmp_path / "payload.bin"
        src.write_bytes(b"kascade-demo-payload" * 1000)
        out = tmp_path / "out-{node}.bin"
        rc = main([
            "demo", "-n", "3", "-i", str(src), "-o", str(out),
            "--chunk-size", "4096", "--timeout", "0.5",
        ])
        assert rc == 0
        for node in ("n2", "n3", "n4"):
            copy = tmp_path / f"out-{node}.bin"
            assert copy.read_bytes() == src.read_bytes()
        captured = capsys.readouterr()
        assert "no failures" in captured.out

    def test_demo_null_sink(self, tmp_path, capsys):
        src = tmp_path / "x.bin"
        src.write_bytes(b"z" * 100)
        rc = main(["demo", "-n", "2", "-i", str(src)])
        assert rc == 0

    def test_demo_striped_to_files(self, tmp_path, capsys):
        src = tmp_path / "payload.bin"
        src.write_bytes(bytes((i * 31) % 256 for i in range(300_000)))
        out = tmp_path / "out-{node}.bin"
        rc = main([
            "demo", "-n", "3", "-i", str(src), "-o", str(out),
            "--stripes", "4", "--chunk-size", "4096", "--timeout", "1.0",
        ])
        assert rc == 0
        for node in ("n2", "n3", "n4"):
            copy = tmp_path / f"out-{node}.bin"
            assert copy.read_bytes() == src.read_bytes()

    def test_demo_command_sink(self, tmp_path):
        src = tmp_path / "x.bin"
        src.write_bytes(b"piped-data")
        rc = main([
            "demo", "-n", "2", "-i", str(src),
            "-O", f"cat > {tmp_path}/{{node}}.copy",
        ])
        assert rc == 0
        assert (tmp_path / "n2.copy").read_bytes() == b"piped-data"


class TestSendRecv:
    def test_multi_process_style_pipeline(self, tmp_path):
        """send + two recv mains, each in its own thread, real TCP."""
        import socket

        def free_port():
            s = socket.socket()
            s.bind(("127.0.0.1", 0))
            port = s.getsockname()[1]
            s.close()
            return port

        ports = [free_port() for _ in range(3)]
        nodes = ",".join(
            f"n{i + 1}=127.0.0.1:{p}" for i, p in enumerate(ports)
        )
        src = tmp_path / "in.bin"
        src.write_bytes(bytes(range(256)) * 200)

        results = {}

        def recv(name, out):
            results[name] = main([
                "recv", "--name", name, "--nodes", nodes,
                "-o", str(out), "--timeout", "2.0",
            ])

        outs = {n: tmp_path / f"{n}.out" for n in ("n2", "n3")}
        threads = [
            threading.Thread(target=recv, args=(n, outs[n])) for n in outs
        ]
        for t in threads:
            t.start()
        send_rc = main([
            "send", "--name", "n1", "--nodes", nodes,
            "-i", str(src), "--timeout", "2.0",
        ])
        for t in threads:
            t.join(timeout=60)
        assert send_rc == 0
        assert results == {"n2": 0, "n3": 0}
        for out in outs.values():
            assert out.read_bytes() == src.read_bytes()

    def test_striped_send_recv(self, tmp_path):
        """--stripes 2 end-to-end: stripe j listens on registry port + j
        (the consecutive-port convention), and each receiver's merged
        output is byte-identical to the input."""
        import socket

        def free_port_run(count):
            # The stripe convention needs `count` consecutive free
            # ports per node; probe until a run is available.
            for _ in range(50):
                socks = []
                try:
                    s = socket.socket()
                    s.bind(("127.0.0.1", 0))
                    base = s.getsockname()[1]
                    socks.append(s)
                    for off in range(1, count):
                        s2 = socket.socket()
                        s2.bind(("127.0.0.1", base + off))
                        socks.append(s2)
                    return base
                except OSError:
                    continue
                finally:
                    for s in socks:
                        s.close()
            raise RuntimeError("no consecutive port run found")

        ports = [free_port_run(2) for _ in range(3)]
        nodes = ",".join(
            f"n{i + 1}=127.0.0.1:{p}" for i, p in enumerate(ports)
        )
        src = tmp_path / "in.bin"
        src.write_bytes(bytes(range(256)) * 400)

        results = {}

        def recv(name, out):
            results[name] = main([
                "recv", "--name", name, "--nodes", nodes, "--stripes", "2",
                "-o", str(out), "--timeout", "5.0",
            ])

        outs = {n: tmp_path / f"{n}.out" for n in ("n2", "n3")}
        threads = [
            threading.Thread(target=recv, args=(n, outs[n])) for n in outs
        ]
        for t in threads:
            t.start()
        send_rc = main([
            "send", "--name", "n1", "--nodes", nodes, "--stripes", "2",
            "-i", str(src), "--timeout", "5.0",
        ])
        for t in threads:
            t.join(timeout=60)
        assert send_rc == 0
        assert results == {"n2": 0, "n3": 0}
        for out in outs.values():
            assert out.read_bytes() == src.read_bytes()

    def test_striped_send_rejects_stdin(self):
        with pytest.raises(SystemExit, match="seekable"):
            main(["send", "--name", "n1", "--nodes", "n1=h:1,n2=h:2",
                  "--stripes", "2"])

    def test_send_must_be_head(self):
        with pytest.raises(SystemExit):
            main(["send", "--name", "n2", "--nodes", "n1=h:1,n2=h:2"])

    def test_recv_unknown_name(self):
        with pytest.raises(SystemExit):
            main(["recv", "--name", "ghost", "--nodes", "n1=h:1,n2=h:2"])


class TestSimCli:
    def test_list(self, capsys):
        from repro.cli.kascade_sim import main as sim_main
        assert sim_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out and "fig15" in out

    def test_map(self, capsys):
        from repro.cli.kascade_sim import main as sim_main
        assert sim_main(["map"]) == 0
        assert "lyon-paris" in capsys.readouterr().out

    def test_unknown_figure(self):
        from repro.cli.kascade_sim import main as sim_main
        with pytest.raises(SystemExit):
            sim_main(["run", "fig99"])

    def test_run_quick_figure(self, capsys):
        from repro.cli.kascade_sim import main as sim_main
        assert sim_main(["run", "fig15", "--quick", "--reps", "1"]) == 0
        out = capsys.readouterr().out
        assert "no failure" in out
        assert "regenerated in" in out


class TestCompare:
    def test_compare_basic(self, capsys):
        from repro.cli.kascade_sim import main as sim_main
        rc = sim_main([
            "compare", "--clients", "10", "--size", "100MB",
            "--methods", "Kascade,TakTuk/chain", "--no-startup",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Kascade" in out and "TakTuk/chain" in out
        assert "10/10" in out

    def test_compare_unknown_method(self):
        from repro.cli.kascade_sim import main as sim_main
        with pytest.raises(SystemExit):
            sim_main(["compare", "--methods", "Carrier-Pigeon"])

    def test_compare_disk_sink(self, capsys):
        from repro.cli.kascade_sim import main as sim_main
        rc = sim_main([
            "compare", "--clients", "5", "--size", "200MB",
            "--sink", "disk", "--methods", "Kascade", "--no-startup",
        ])
        assert rc == 0

    def test_compare_random_order(self, capsys):
        from repro.cli.kascade_sim import main as sim_main
        rc = sim_main([
            "compare", "--clients", "40", "--size", "500MB",
            "--order", "random", "--methods", "Kascade", "--no-startup",
        ])
        assert rc == 0


class TestHelpSurfaces:
    """Every subcommand's --help must render (argparse wiring sanity)."""

    @pytest.mark.parametrize("argv", [
        ["--help"],
        ["demo", "--help"], ["recv", "--help"], ["send", "--help"],
    ])
    def test_kascade_help(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 0
        assert "usage" in capsys.readouterr().out

    @pytest.mark.parametrize("argv", [
        ["--help"], ["list", "--help"], ["map", "--help"],
        ["run", "--help"], ["all", "--help"], ["compare", "--help"],
        ["proto", "--help"], ["fuzz", "--help"], ["diff", "--help"],
    ])
    def test_kascade_sim_help(self, argv, capsys):
        from repro.cli.kascade_sim import main as sim_main
        with pytest.raises(SystemExit) as exc:
            sim_main(argv)
        assert exc.value.code == 0
        assert "usage" in capsys.readouterr().out

    def test_versions(self, capsys):
        from repro.cli.kascade_sim import main as sim_main
        for entry in (main, sim_main):
            with pytest.raises(SystemExit) as exc:
                entry(["--version"])
            assert exc.value.code == 0
