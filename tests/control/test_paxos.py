"""The pure Paxos core (`repro.control.paxos`) and the replicated state
machine (`repro.control.state`).

Safety is the whole point of the quorum layer, so the heart of this file
is a seeded adversarial harness: dueling proposers racing for the same
slot over a lossy, majority-sampled network, every interleaving
reproducible from its seed.  The invariant under attack is single-decree
Paxos's one guarantee — once *any* value is decided for a slot, every
later decision for that slot is the same value.
"""

import random

import pytest

from repro.control.paxos import (
    Acceptor,
    Learner,
    Proposal,
    ballot_key,
)
from repro.control.state import ControlState


class TestAcceptor:
    def test_first_prepare_promises(self):
        acc = Acceptor()
        p = acc.on_prepare(0, (1, 7))
        assert p.ok and p.promised == (1, 7)
        assert p.accepted_value is None

    def test_never_promises_backwards(self):
        acc = Acceptor()
        acc.on_prepare(0, (5, 1))
        p = acc.on_prepare(0, (3, 2))
        assert not p.ok
        assert p.promised == (5, 1)  # the floor the loser must exceed

    def test_equal_ballot_re_prepare_is_ok(self):
        # b >= promise, not b > promise: a proposer may retry its own
        # prepare after a lost reply without bumping the round.
        acc = Acceptor()
        acc.on_prepare(0, (2, 1))
        assert acc.on_prepare(0, (2, 1)).ok

    def test_never_accepts_below_the_promise(self):
        acc = Acceptor()
        acc.on_prepare(0, (5, 1))
        a = acc.on_accept(0, (4, 2), {"x": 1})
        assert not a.ok
        assert acc.accepted(0) is None

    def test_accept_records_and_raises_the_promise(self):
        acc = Acceptor()
        acc.on_accept(0, (3, 1), {"x": 1})
        assert acc.accepted(0) == ((3, 1), {"x": 1})
        # The accept raised the promise floor too.
        assert not acc.on_prepare(0, (2, 9)).ok

    def test_promise_carries_the_accepted_pair(self):
        acc = Acceptor()
        acc.on_accept(0, (3, 1), {"x": 1})
        p = acc.on_prepare(0, (9, 2))
        assert p.ok
        assert p.accepted_ballot == (3, 1)
        assert p.accepted_value == {"x": 1}

    def test_slots_are_independent(self):
        acc = Acceptor()
        acc.on_prepare(0, (9, 1))
        assert acc.on_prepare(1, (1, 2)).ok


class TestProposal:
    def test_majority_arithmetic(self):
        assert Proposal(0, (1, 0), {}, 3).quorum == 2
        assert Proposal(0, (1, 0), {}, 5).quorum == 3
        assert Proposal(0, (1, 0), {}, 1).quorum == 1
        with pytest.raises(ValueError):
            Proposal(0, (1, 0), {}, 0)

    def test_adopts_the_highest_ballot_accepted_value(self):
        accs = [Acceptor() for _ in range(3)]
        accs[0].on_accept(0, (1, 1), {"v": "old"})
        accs[1].on_accept(0, (2, 2), {"v": "newer"})
        prop = Proposal(0, (9, 0), {"v": "mine"}, 3)
        for i, acc in enumerate(accs):
            prop.on_promise(i, acc.on_prepare(0, (9, 0)))
        assert prop.promised
        # Not "mine": a promiser had already accepted, highest wins.
        assert prop.value_to_accept() == {"v": "newer"}

    def test_own_value_when_no_promiser_accepted(self):
        accs = [Acceptor() for _ in range(3)]
        prop = Proposal(0, (1, 0), {"v": "mine"}, 3)
        for i, acc in enumerate(accs):
            prop.on_promise(i, acc.on_prepare(0, (1, 0)))
        assert prop.value_to_accept() == {"v": "mine"}

    def test_nacks_surface_the_floor_to_beat(self):
        acc = Acceptor()
        acc.on_prepare(0, (7, 9))
        prop = Proposal(0, (1, 0), {}, 3)
        prop.on_promise(0, acc.on_prepare(0, (1, 0)))
        assert not prop.promised
        assert prop.highest_seen == (7, 9)

    def test_ballots_never_tie(self):
        # (round, proposer_id) lexicographic: distinct proposers always
        # order strictly, so a duel always has a winner.
        assert ballot_key((3, 1)) < ballot_key((3, 2))
        assert ballot_key((3, 2)) < ballot_key((4, 0))
        assert ballot_key(None) < ballot_key((0, 0))


class TestLearner:
    def test_applies_in_slot_order(self):
        applied = []
        learner = Learner(lambda s, v: applied.append((s, v["n"])))
        assert learner.learn(2, {"n": "c"}) == []
        assert learner.learn(0, {"n": "a"}) == [0]
        assert applied == [(0, "a")]
        # Slot 1 closes the gap; 2 was buffered and follows immediately.
        assert learner.learn(1, {"n": "b"}) == [1, 2]
        assert applied == [(0, "a"), (1, "b"), (2, "c")]
        assert learner.applied == 3

    def test_relearn_is_idempotent(self):
        applied = []
        learner = Learner(lambda s, v: applied.append(s))
        learner.learn(0, {"n": 1})
        assert learner.learn(0, {"n": 1}) == []
        assert applied == [0]

    def test_chosen_exposes_the_gap(self):
        learner = Learner(lambda s, v: None)
        learner.learn(3, {"n": "x"})
        assert learner.chosen == {3: {"n": "x"}}


def run_duel(seed: int, *, n_acceptors: int = 3, n_proposers: int = 3,
             attempts: int = 40, delivery: float = 0.7):
    """Dueling proposers racing for slot 0 over a seeded lossy network.

    Each attempt, a random proposer runs a full prepare/accept cycle;
    every message independently gets through with probability
    ``delivery`` — losses starve majorities and interleave the phases,
    which is exactly the regime the adoption rule exists for.  Returns
    the list of decided values, in decision order.
    """
    rng = random.Random(seed)
    accs = [Acceptor() for _ in range(n_acceptors)]
    rounds = [0] * n_proposers
    decided = []
    for _ in range(attempts):
        pid = rng.randrange(n_proposers)
        rounds[pid] += rng.randrange(1, 3)
        ballot = (rounds[pid], pid)
        own = {"kind": "election", "head": f"cand-{pid}"}
        prop = Proposal(0, ballot, own, n_acceptors)
        for i, acc in enumerate(accs):
            if rng.random() < delivery:
                prop.on_promise(i, acc.on_prepare(0, ballot))
        if not prop.promised:
            if prop.highest_seen is not None:
                rounds[pid] = max(rounds[pid], prop.highest_seen[0])
            continue
        value = prop.value_to_accept()
        for i, acc in enumerate(accs):
            if rng.random() < delivery:
                prop.on_accepted(i, acc.on_accept(0, ballot, value))
        if prop.decided:
            decided.append(value)
    return decided


class TestDuelingProposers:
    """The safety sweep: no seed, loss rate, or cluster size may ever
    produce two different decisions for one slot."""

    @pytest.mark.parametrize("seed", range(50))
    def test_decided_slot_is_immutable(self, seed):
        decided = run_duel(seed)
        assert all(v == decided[0] for v in decided), (
            f"seed {seed}: slot decided twice with different values: "
            f"{decided}"
        )

    @pytest.mark.parametrize("seed", range(20))
    def test_immutable_under_heavy_loss(self, seed):
        decided = run_duel(seed, delivery=0.45, attempts=120)
        assert all(v == decided[0] for v in decided)

    @pytest.mark.parametrize("seed", range(20))
    def test_immutable_on_five_acceptors(self, seed):
        decided = run_duel(seed, n_acceptors=5, n_proposers=4, attempts=80)
        assert all(v == decided[0] for v in decided)

    def test_progress_under_benign_network(self):
        # Liveness isn't guaranteed under dueling, but a lossless duel
        # with round adoption converges fast — a sanity check that the
        # harness isn't vacuously passing on zero decisions.
        assert run_duel(7, delivery=1.0)

    def test_harness_is_deterministic(self):
        assert run_duel(3) == run_duel(3)


class TestControlState:
    def test_register_and_plan(self):
        st = ControlState()
        st.apply({"kind": "register", "node": "n2", "host": "h", "port": 9,
                  "pid": 12})
        st.apply({"kind": "plan",
                  "plan": {"version": 1, "head": "n1", "stripes": [["n2"]]}})
        assert st.registrations["n2"] == {"host": "h", "port": 9, "pid": 12}
        assert st.head == "n1"

    def test_watermarks_only_rise(self):
        st = ControlState()
        st.apply({"kind": "watermark", "node": "n2", "bytes": 100})
        st.apply({"kind": "watermark", "node": "n2", "bytes": 40})  # stale
        assert st.watermarks["n2"] == 100

    def test_election_overrides_the_plan_head_and_bumps_epoch(self):
        st = ControlState()
        st.apply({"kind": "plan",
                  "plan": {"version": 1, "head": "n1", "stripes": [["n2"]]}})
        st.apply({"kind": "election", "head": "n2", "dead": ["n1"]})
        assert st.head == "n2"
        assert st.dead == ["n1"]
        assert st.epoch == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown control command"):
            ControlState().apply({"kind": "reboot"})

    def test_most_complete_is_the_election_rule(self):
        st = ControlState()
        for node, mark in (("n2", 300), ("n3", 500), ("n4", 500),
                           ("n5", 100)):
            st.apply({"kind": "watermark", "node": node, "bytes": mark})
        # Highest watermark wins; the n3/n4 tie breaks on name.
        assert st.most_complete() == "n3"
        assert st.most_complete(exclude=["n3"]) == "n4"
        # Recorded dead nodes are never candidates, even unexcluded.
        st.apply({"kind": "election", "head": "n2", "dead": ["n3", "n4"]})
        assert st.most_complete() == "n2"
        assert st.most_complete(exclude=["n2", "n5"]) is None

    def test_replicas_applying_the_same_log_agree(self):
        # Application is a pure function of the command sequence — the
        # property that lets any majority reconstruct the coordinator.
        rng = random.Random(11)
        log = [{"kind": "watermark", "node": f"n{rng.randrange(2, 6)}",
                "bytes": rng.randrange(1 << 20)} for _ in range(200)]
        log.append({"kind": "election", "head": "n3", "dead": ["n1"]})
        a, b = ControlState(), ControlState()
        for cmd in log:
            a.apply(cmd)
        for cmd in log:
            b.apply(cmd)
        assert a.snapshot() == b.snapshot()
        assert a.most_complete() == b.most_complete()

    def test_snapshot_roundtrip(self):
        st = ControlState()
        st.apply({"kind": "register", "node": "n2", "host": "h", "port": 9})
        st.apply({"kind": "watermark", "node": "n2", "bytes": 7})
        st.apply({"kind": "election", "head": "n2", "dead": ["n1"]})
        restored = ControlState.from_snapshot(st.snapshot())
        assert restored.snapshot() == st.snapshot()
        assert restored.head == "n2"
