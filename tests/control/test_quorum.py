"""Replica servers and the quorum client, over real sockets.

`ReplicaServer.handle` is public precisely so the wire vocabulary can be
tested without sockets; the `QuorumClient` tests then run against real
in-thread replicas — including minority death, majority loss, and two
dueling coordinators racing for slots.
"""

import contextlib
import threading

import pytest

from repro.control.client import QuorumClient, QuorumError
from repro.control.replica import ReplicaServer


class TestReplicaHandle:
    def test_prepare_and_accept_round_trip(self):
        rep = ReplicaServer(name="r0")
        p = rep.handle({"op": "prepare", "slot": 0, "ballot": [1, 7]})
        assert p["op"] == "promise" and p["ok"]
        assert p["promised"] == [1, 7] and p["accepted_value"] is None
        a = rep.handle({"op": "accept", "slot": 0, "ballot": [1, 7],
                        "value": {"kind": "watermark", "node": "n2",
                                  "bytes": 9}})
        assert a["op"] == "accepted" and a["ok"]
        # A later prepare reports the accepted pair for adoption.
        p2 = rep.handle({"op": "prepare", "slot": 0, "ballot": [2, 1]})
        assert p2["accepted_ballot"] == [1, 7]
        assert p2["accepted_value"]["node"] == "n2"
        rep.stop()

    def test_stale_prepare_is_nacked_with_the_floor(self):
        rep = ReplicaServer(name="r0")
        rep.handle({"op": "prepare", "slot": 0, "ballot": [5, 1]})
        p = rep.handle({"op": "prepare", "slot": 0, "ballot": [3, 2]})
        assert not p["ok"] and p["promised"] == [5, 1]
        rep.stop()

    def test_learn_applies_into_the_state_machine(self):
        rep = ReplicaServer(name="r0")
        r = rep.handle({"op": "learn", "slot": 0,
                        "value": {"kind": "watermark", "node": "n3",
                                  "bytes": 123}})
        assert r == {"op": "learned", "slot": 0, "applied": [0]}
        assert rep.state.watermarks == {"n3": 123}
        # Out-of-order learn is buffered, surfaced via read's "chosen".
        rep.handle({"op": "learn", "slot": 5,
                    "value": {"kind": "watermark", "node": "n4", "bytes": 1}})
        state = rep.handle({"op": "read"})
        assert state["op"] == "state" and state["applied"] == 1
        assert state["state"]["watermarks"] == {"n3": 123}
        assert "5" in state["chosen"]
        rep.stop()

    def test_ping_and_unknown_op(self):
        rep = ReplicaServer(name="r9")
        pong = rep.handle({"op": "ping"})
        assert pong == {"op": "pong", "name": "r9", "applied": 0}
        assert rep.handle({"op": "frobnicate"})["op"] == "error"
        rep.stop()


@contextlib.contextmanager
def quorum(n=3):
    servers = [ReplicaServer(name=f"r{i}") for i in range(n)]
    try:
        for s in servers:
            s.start()
        yield servers, [(s.host, s.port) for s in servers]
    finally:
        for s in servers:
            s.stop()


class TestQuorumClient:
    def test_commits_replicate_to_every_member(self):
        with quorum() as (servers, addrs):
            client = QuorumClient(addrs, proposer_id=1, timeout=2.0)
            try:
                assert client.commit({"kind": "watermark", "node": "n2",
                                      "bytes": 10}) == 0
                assert client.commit({"kind": "watermark", "node": "n3",
                                      "bytes": 20}) == 1
                for s in servers:
                    assert s.state.watermarks == {"n2": 10, "n3": 20}
                state = client.read_state()
                assert state.watermarks == {"n2": 10, "n3": 20}
            finally:
                client.close()

    def test_minority_death_does_not_interrupt(self):
        with quorum() as (servers, addrs):
            client = QuorumClient(addrs, proposer_id=1, timeout=2.0)
            try:
                client.commit({"kind": "watermark", "node": "n2", "bytes": 1})
                servers[0].stop()
                # Two of three still answer: commits and reads proceed.
                client.commit({"kind": "watermark", "node": "n2", "bytes": 2})
                assert client.alive() == 2
                assert client.read_state().watermarks == {"n2": 2}
            finally:
                client.close()

    def test_majority_loss_raises(self):
        with quorum() as (servers, addrs):
            client = QuorumClient(addrs, proposer_id=1, timeout=0.5)
            try:
                servers[0].stop()
                servers[1].stop()
                with pytest.raises(QuorumError, match="quorum lost"):
                    client.commit({"kind": "watermark", "node": "n2",
                                   "bytes": 1})
                with pytest.raises(QuorumError, match="quorum lost"):
                    client.read_state()
            finally:
                client.close()

    def test_read_state_requires_a_majority_not_everyone(self):
        with quorum(n=5) as (servers, addrs):
            client = QuorumClient(addrs, proposer_id=1, timeout=2.0)
            try:
                client.commit({"kind": "register", "node": "n2",
                               "host": "h", "port": 9})
                servers[3].stop()
                servers[4].stop()
                assert "n2" in client.read_state().registrations
            finally:
                client.close()

    def test_dueling_coordinators_commit_exactly_once_each(self):
        # Two proposers with distinct ids race the same quorum.  Every
        # command must land in exactly one slot and every replica must
        # apply the identical total order.
        with quorum() as (servers, addrs):
            clients = [QuorumClient(addrs, proposer_id=pid, timeout=2.0)
                       for pid in (1, 2)]
            errors = []

            def pound(client, prefix):
                try:
                    for i in range(8):
                        client.commit({"kind": "watermark",
                                       "node": f"{prefix}{i}",
                                       "bytes": i + 1})
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=pound, args=(c, p))
                       for c, p in zip(clients, ("a", "b"))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for c in clients:
                c.close()
            assert not errors
            expected = {f"{p}{i}": i + 1
                        for p in ("a", "b") for i in range(8)}
            # All 16 commands landed, none lost or doubled, and the
            # replicas are byte-identical.
            snaps = [s.state.snapshot() for s in servers]
            assert snaps[0]["watermarks"] == expected
            assert snaps[0] == snaps[1] == snaps[2]
            assert all(s.learner.applied == 16 for s in servers)

    def test_shutdown_replicas_stops_the_quorum(self):
        with quorum() as (servers, addrs):
            client = QuorumClient(addrs, proposer_id=1, timeout=2.0)
            try:
                client.shutdown_replicas()
            finally:
                client.close()
            for s in servers:
                assert s._stop.wait(timeout=2.0)
