"""Tests for the receive-buffer pool: export-probed recycling, the
segment-size ratchet, and the idle cap."""

from repro.core import BufferPool, PerfStats
from repro.core.buffers import DEFAULT_SEGMENT, _has_exports


class TestExportProbe:
    def test_no_views_means_no_exports(self):
        assert not _has_exports(bytearray(64))

    def test_live_view_pins(self):
        buf = bytearray(64)
        view = memoryview(buf)
        assert _has_exports(buf)
        view.release()
        assert not _has_exports(buf)

    def test_sliced_view_pins_whole_buffer(self):
        buf = bytearray(64)
        view = memoryview(buf)[10:20]
        assert _has_exports(buf)
        del view
        assert not _has_exports(buf)

    def test_probe_preserves_contents(self):
        buf = bytearray(b"hello world")
        _has_exports(buf)
        assert buf == b"hello world"


class TestBufferPool:
    def test_acquire_allocates_segment_size(self):
        pool = BufferPool(1024, stats=PerfStats())
        assert len(pool.acquire()) == 1024

    def test_default_segment(self):
        assert BufferPool(stats=PerfStats()).segment_size == DEFAULT_SEGMENT

    def test_recycle_then_acquire_reuses(self):
        stats = PerfStats()
        pool = BufferPool(1024, stats=stats)
        buf = pool.acquire()
        pool.recycle(buf)
        again = pool.acquire()
        assert again is buf
        assert stats.pool_reuses == 1
        assert stats.pool_allocations == 1

    def test_pinned_buffer_not_reused(self):
        stats = PerfStats()
        pool = BufferPool(1024, stats=stats)
        buf = pool.acquire()
        view = memoryview(buf)
        pool.recycle(buf)
        other = pool.acquire()
        assert other is not buf
        assert stats.pool_allocations == 2
        # Dropping the view unpins it for the next acquire.
        view.release()
        assert pool.acquire() is buf

    def test_min_size_ratchets_segment(self):
        pool = BufferPool(1024, stats=PerfStats())
        buf = pool.acquire(5000)
        assert len(buf) >= 5000
        assert pool.segment_size >= 5000
        # Pre-ratchet buffers are dropped on recycle, not kept undersized.
        pool.recycle(bytearray(1024))
        assert pool.idle_buffers == 0

    def test_max_idle_cap(self):
        pool = BufferPool(64, max_idle=2, stats=PerfStats())
        for _ in range(5):
            pool.recycle(bytearray(64))
        assert pool.idle_buffers == 2

    def test_undersized_request_served_from_idle(self):
        stats = PerfStats()
        pool = BufferPool(1024, stats=stats)
        buf = pool.acquire()
        pool.recycle(buf)
        assert pool.acquire(100) is buf
