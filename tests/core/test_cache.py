"""Unit tests for the content-addressed chunk cache."""

import pytest

from repro.core.cache import ArtifactMeta, CacheTapSink, ChunkCache, chunk_count
from repro.core.errors import KascadeError
from repro.core.perfstats import PerfStats
from repro.core.sinks import BufferSink

DIG_A = "a" * 64
DIG_B = "b" * 64


def make_cache(max_bytes=1024):
    stats = PerfStats()
    return ChunkCache(max_bytes, stats=stats), stats


class TestGeometry:
    def test_chunk_count(self):
        assert chunk_count(0, 16) == 0
        assert chunk_count(1, 16) == 1
        assert chunk_count(16, 16) == 1
        assert chunk_count(17, 16) == 2
        with pytest.raises(KascadeError):
            chunk_count(10, 0)

    def test_artifact_meta_tail_chunk(self):
        art = ArtifactMeta(DIG_A, size=40, chunk_size=16)
        assert art.chunks == 3
        assert [art.chunk_len(i) for i in range(3)] == [16, 16, 8]
        with pytest.raises(KascadeError):
            art.chunk_len(3)
        assert ArtifactMeta.from_wire(art.to_wire()) == art


class TestPutGet:
    def test_round_trip_and_counters(self):
        cache, stats = make_cache()
        assert cache.put(DIG_A, 0, b"hello")
        assert cache.get(DIG_A, 0) == b"hello"
        assert cache.get(DIG_A, 1) is None
        assert stats.cache_hits == 1
        assert stats.cache_misses == 1
        assert stats.bytes_from_cache == 5

    def test_content_addressing_is_per_digest(self):
        cache, _ = make_cache()
        cache.put(DIG_A, 0, b"aaaa")
        cache.put(DIG_B, 0, b"bbbb")
        assert cache.get(DIG_A, 0) == b"aaaa"
        assert cache.get(DIG_B, 0) == b"bbbb"

    def test_put_copies_the_callers_buffer(self):
        """Ring-retention safety: the cache must own its memory, because
        the receive buffers a relay hands out are pooled and recycled."""
        cache, _ = make_cache()
        buf = bytearray(b"live-buffer")
        cache.put(DIG_A, 0, memoryview(buf))
        buf[:4] = b"XXXX"  # the pool "recycles" the buffer
        assert cache.get(DIG_A, 0) == b"live-buffer"

    def test_zero_budget_disables_the_cache(self):
        cache, stats = make_cache(max_bytes=0)
        assert not cache.put(DIG_A, 0, b"x")
        assert cache.get(DIG_A, 0) is None
        assert stats.cache_misses == 1


class TestEviction:
    def test_lru_eviction_bounds_bytes(self):
        cache, stats = make_cache(max_bytes=30)
        for i in range(4):  # 4 x 10 bytes > 30-byte budget
            cache.put(DIG_A, i, bytes(10))
        assert cache.bytes_used <= 30
        assert cache.get(DIG_A, 0) is None  # oldest went first
        assert cache.get(DIG_A, 3) is not None
        assert cache.evictions == 1
        assert stats.cache_evictions == 1

    def test_get_refreshes_recency(self):
        cache, _ = make_cache(max_bytes=30)
        for i in range(3):
            cache.put(DIG_A, i, bytes(10))
        assert cache.get(DIG_A, 0) is not None  # touch the oldest
        cache.put(DIG_A, 3, bytes(10))          # forces one eviction
        assert cache.peek(DIG_A, 0)             # survived: it was MRU'd
        assert not cache.peek(DIG_A, 1)

    def test_pinned_artifact_is_never_evicted(self):
        cache, _ = make_cache(max_bytes=30)
        cache.put(DIG_A, 0, bytes(10))
        cache.pin_artifact(DIG_A)
        for i in range(5):
            cache.put(DIG_B, i, bytes(10))
        assert cache.peek(DIG_A, 0)
        cache.unpin_artifact(DIG_A)
        for i in range(5, 10):
            cache.put(DIG_B, i, bytes(10))
        assert not cache.peek(DIG_A, 0)

    def test_put_declined_when_everything_is_pinned(self):
        cache, _ = make_cache(max_bytes=20)
        cache.put(DIG_A, 0, bytes(20))
        cache.pin_artifact(DIG_A)
        assert not cache.put(DIG_B, 0, bytes(10))
        assert cache.peek(DIG_A, 0)

    def test_oversized_chunk_declined_not_raised(self):
        cache, _ = make_cache(max_bytes=8)
        assert not cache.put(DIG_A, 0, bytes(9))
        assert len(cache) == 0


class TestArtifactQueries:
    def test_has_artifact_and_prefix(self):
        cache, _ = make_cache()
        assert cache.has_artifact(DIG_A, 0)          # empty artifact
        cache.put(DIG_A, 0, b"x")
        cache.put(DIG_A, 2, b"z")
        assert not cache.has_artifact(DIG_A, 3)
        assert cache.contiguous_chunks(DIG_A) == 1
        cache.put(DIG_A, 1, b"y")
        assert cache.has_artifact(DIG_A, 3)
        assert cache.contiguous_chunks(DIG_A) == 3
        assert cache.artifact_chunks(DIG_B) == set()

    def test_eviction_updates_artifact_index(self):
        cache, _ = make_cache(max_bytes=20)
        cache.put(DIG_A, 0, bytes(10))
        cache.put(DIG_A, 1, bytes(10))
        cache.put(DIG_B, 0, bytes(10))  # evicts (A, 0)
        assert cache.artifact_chunks(DIG_A) == {1}
        assert not cache.has_artifact(DIG_A, 2)


class TestCacheTapSink:
    def test_slices_stream_into_chunks(self):
        cache, _ = make_cache(max_bytes=1024)
        art = ArtifactMeta(DIG_A, size=40, chunk_size=16)
        inner = BufferSink()
        tap = CacheTapSink(inner, cache, art)
        payload = bytes(range(40))
        # Deliberately misaligned writes: 10 + 20 + 10 bytes.
        tap.write_chunk(payload[:10])
        tap.write_chunk(payload[10:30])
        tap.write_chunk(payload[30:])
        tap.finish()
        assert inner.getvalue() == payload
        assert cache.has_artifact(DIG_A, 3)
        assert cache.get(DIG_A, 0) == payload[:16]
        assert cache.get(DIG_A, 2) == payload[32:]  # short tail chunk
