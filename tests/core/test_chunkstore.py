"""Tests for the recovery ring buffer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ChunkRingBuffer, ChunkStoreError


class TestBasics:
    def test_initial_state(self):
        buf = ChunkRingBuffer(capacity=100)
        assert buf.min_offset == 0
        assert buf.end_offset == 0
        assert len(buf) == 0
        assert buf.covers(0)

    def test_start_offset(self):
        buf = ChunkRingBuffer(capacity=100, start_offset=500)
        assert buf.min_offset == 500
        assert buf.end_offset == 500
        assert not buf.covers(499)
        assert buf.covers(500)

    def test_invalid_construction(self):
        with pytest.raises(ChunkStoreError):
            ChunkRingBuffer(capacity=0)
        with pytest.raises(ChunkStoreError):
            ChunkRingBuffer(capacity=10, start_offset=-1)

    def test_append_and_read(self):
        buf = ChunkRingBuffer(capacity=100)
        buf.append(b"hello")
        buf.append(b"world")
        assert buf.end_offset == 10
        assert buf.read_from(0) == b"helloworld"
        assert buf.read_from(3) == b"loworld"
        assert buf.read_from(10) == b""

    def test_read_with_limit(self):
        buf = ChunkRingBuffer(capacity=100)
        buf.append(b"abcdefgh")
        assert buf.read_from(2, limit=3) == b"cde"

    def test_empty_append_is_noop(self):
        buf = ChunkRingBuffer(capacity=10)
        buf.append(b"")
        assert buf.end_offset == 0


class TestEviction:
    def test_eviction_advances_min(self):
        buf = ChunkRingBuffer(capacity=10)
        buf.append(b"aaaa")   # [0, 4)
        buf.append(b"bbbb")   # [0, 8)
        buf.append(b"cccc")   # evicts "aaaa" -> [4, 12)
        assert buf.min_offset == 4
        assert buf.end_offset == 12
        assert buf.read_from(4) == b"bbbbcccc"

    def test_read_before_min_raises(self):
        buf = ChunkRingBuffer(capacity=8)
        buf.append(b"aaaa")
        buf.append(b"bbbb")
        buf.append(b"cc")  # evicts aaaa
        with pytest.raises(ChunkStoreError):
            buf.read_from(0)

    def test_read_beyond_end_raises(self):
        buf = ChunkRingBuffer(capacity=8)
        buf.append(b"aa")
        with pytest.raises(ChunkStoreError):
            buf.read_from(3)

    def test_chunk_bigger_than_capacity_rejected(self):
        buf = ChunkRingBuffer(capacity=4)
        with pytest.raises(ChunkStoreError):
            buf.append(b"too-big!")

    def test_whole_chunks_evicted(self):
        # Eviction never splits a chunk: after overflow the window starts
        # at a chunk boundary.
        buf = ChunkRingBuffer(capacity=6)
        buf.append(b"abc")
        buf.append(b"def")
        buf.append(b"g")  # 7 bytes total -> evict "abc" entirely
        assert buf.min_offset == 3
        assert buf.read_from(3) == b"defg"


class TestIterChunks:
    def test_iter_from_boundary(self):
        buf = ChunkRingBuffer(capacity=100)
        buf.append(b"abc")
        buf.append(b"defg")
        pieces = list(buf.iter_chunks_from(3))
        assert pieces == [(3, b"defg")]

    def test_iter_from_mid_chunk(self):
        buf = ChunkRingBuffer(capacity=100)
        buf.append(b"abc")
        buf.append(b"defg")
        pieces = list(buf.iter_chunks_from(1))
        assert pieces == [(1, b"bc"), (3, b"defg")]

    def test_iter_from_live_edge_is_empty(self):
        buf = ChunkRingBuffer(capacity=100)
        buf.append(b"abc")
        assert list(buf.iter_chunks_from(3)) == []

    def test_iter_outside_window_raises(self):
        buf = ChunkRingBuffer(capacity=100)
        buf.append(b"abc")
        with pytest.raises(ChunkStoreError):
            list(buf.iter_chunks_from(4))


class TestClear:
    def test_clear_keeps_position(self):
        buf = ChunkRingBuffer(capacity=100)
        buf.append(b"abcdef")
        buf.clear()
        assert buf.min_offset == 6
        assert buf.end_offset == 6
        assert len(buf) == 0
        buf.append(b"gh")
        assert buf.read_from(6) == b"gh"


class TestProperties:
    @given(
        st.lists(st.binary(min_size=1, max_size=20), min_size=1, max_size=50),
        st.integers(min_value=20, max_value=100),
    )
    @settings(max_examples=80, deadline=None)
    def test_window_matches_stream_suffix(self, chunks, capacity):
        """Whatever was appended, the buffer holds a *contiguous suffix* of
        the stream no larger than capacity, and reads return exactly the
        stream bytes for that window."""
        stream = b"".join(chunks)
        buf = ChunkRingBuffer(capacity=capacity)
        for c in chunks:
            buf.append(c)
        assert buf.end_offset == len(stream)
        assert buf.end_offset - buf.min_offset <= capacity
        window = buf.read_from(buf.min_offset)
        assert window == stream[buf.min_offset:]
        # iter_chunks_from reconstructs the same bytes
        rebuilt = b"".join(d for _, d in buf.iter_chunks_from(buf.min_offset))
        assert rebuilt == window

    @given(
        st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=30),
        st.integers(min_value=16, max_value=64),
        st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_covers_agrees_with_read(self, chunks, capacity, data):
        buf = ChunkRingBuffer(capacity=capacity)
        for c in chunks:
            buf.append(c)
        offset = data.draw(st.integers(min_value=0, max_value=buf.end_offset + 5))
        if buf.covers(offset):
            buf.read_from(offset)  # must not raise
        else:
            with pytest.raises(ChunkStoreError):
                buf.read_from(offset)
