"""Tests for repro.core.config."""

import pytest

from repro.core import ConfigError, DEFAULT_CONFIG, KascadeConfig


class TestKascadeConfig:
    def test_defaults_are_sane(self):
        cfg = DEFAULT_CONFIG
        assert cfg.chunk_size == 1 << 20
        assert cfg.buffer_chunks >= 1
        assert cfg.io_timeout > 0

    def test_buffer_bytes(self):
        cfg = KascadeConfig(chunk_size=1000, buffer_chunks=5)
        assert cfg.buffer_bytes == 5000

    def test_with_replaces_fields(self):
        cfg = DEFAULT_CONFIG.with_(chunk_size=4096)
        assert cfg.chunk_size == 4096
        assert cfg.io_timeout == DEFAULT_CONFIG.io_timeout
        # original untouched (frozen dataclass copy semantics)
        assert DEFAULT_CONFIG.chunk_size == 1 << 20

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_CONFIG.chunk_size = 1  # type: ignore[misc]

    @pytest.mark.parametrize("field,value", [
        ("chunk_size", 0),
        ("chunk_size", -1),
        ("buffer_chunks", 0),
        ("io_timeout", 0.0),
        ("ping_timeout", -1.0),
        ("connect_timeout", 0.0),
        ("report_timeout", -5.0),
        ("max_connect_attempts", -1),
        ("sink_writeback_depth", -1),
        ("sink_writeback_budget", -1),
        ("readahead_chunks", -1),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigError):
            KascadeConfig(**{field: value})

    def test_stage_off_switches_are_valid(self):
        cfg = KascadeConfig(sink_writeback_depth=0, readahead_chunks=0)
        assert cfg.sink_writeback_depth == 0
        assert cfg.readahead_chunks == 0
