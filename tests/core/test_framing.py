"""Tests for the wire framing: header codec, incremental decoder, and the
blocking file-like helpers."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Data,
    End,
    Forget,
    FrameDecoder,
    FramingError,
    Get,
    Op,
    PGet,
    Passed,
    Ping,
    Pong,
    Quit,
    Report,
    encode_header,
    read_message,
    write_message,
)
from repro.core.framing import header_size, payload_size

OFFSETS = st.integers(min_value=0, max_value=2**40)
SIZES = st.integers(min_value=0, max_value=1 << 20)


def all_message_strategy():
    """Strategy over every message type with valid fields and payloads."""
    payloads = st.binary(min_size=0, max_size=200)
    return st.one_of(
        st.builds(Get, OFFSETS).map(lambda m: (m, b"")),
        st.tuples(OFFSETS, st.integers(min_value=0, max_value=1000)).map(
            lambda ot: (PGet(ot[0], ot[0] + ot[1]), b"")
        ),
        st.builds(Forget, OFFSETS).map(lambda m: (m, b"")),
        st.tuples(OFFSETS, payloads).map(
            lambda op: (Data(op[0], len(op[1])), op[1])
        ),
        st.builds(End, OFFSETS).map(lambda m: (m, b"")),
        st.just((Quit(), b"")),
        payloads.map(lambda p: (Report(len(p)), p)),
        st.just((Passed(), b"")),
        st.builds(Ping, OFFSETS).map(lambda m: (m, b"")),
        st.builds(Pong, OFFSETS).map(lambda m: (m, b"")),
    )


class TestHeaderCodec:
    @pytest.mark.parametrize("msg", [
        Get(0), Get(2**40), PGet(5, 10), Forget(7), Data(3, 9),
        End(123), Quit(), Report(4), Passed(), Ping(1), Pong(1),
    ])
    def test_roundtrip_single(self, msg):
        dec = FrameDecoder()
        dec.feed(encode_header(msg))
        dec.feed(b"\x00" * payload_size(msg))
        got, payload = dec.try_pop()
        assert got == msg
        assert len(payload) == payload_size(msg)

    def test_header_size_matches_encoding(self):
        for msg in (Get(1), PGet(1, 2), Forget(1), Data(0, 0), End(1),
                    Quit(), Report(0), Passed(), Ping(9), Pong(9)):
            assert len(encode_header(msg)) == header_size(msg.op)

    def test_unknown_opcode_rejected(self):
        dec = FrameDecoder()
        dec.feed(b"\xff")
        with pytest.raises(FramingError):
            dec.try_pop()

    def test_oversized_data_header_rejected(self):
        # Forge a DATA header with an absurd size field.
        import struct
        raw = bytes([Op.DATA]) + struct.pack(">QQ", 0, 1 << 60)
        dec = FrameDecoder()
        dec.feed(raw)
        with pytest.raises(FramingError):
            dec.try_pop()

    def test_reversed_pget_on_wire_rejected(self):
        import struct
        raw = bytes([Op.PGET]) + struct.pack(">QQ", 10, 5)
        dec = FrameDecoder()
        dec.feed(raw)
        with pytest.raises(FramingError):
            dec.try_pop()


class TestFrameDecoder:
    def test_empty_returns_none(self):
        assert FrameDecoder().try_pop() is None

    def test_partial_header_waits(self):
        dec = FrameDecoder()
        raw = encode_header(Get(77))
        dec.feed(raw[:4])
        assert dec.try_pop() is None
        dec.feed(raw[4:])
        assert dec.try_pop() == (Get(77), b"")

    def test_partial_payload_waits(self):
        dec = FrameDecoder()
        payload = b"hello world"
        dec.feed(encode_header(Data(0, len(payload))))
        dec.feed(payload[:5])
        assert dec.try_pop() is None
        dec.feed(payload[5:])
        assert dec.try_pop() == (Data(0, len(payload)), payload)

    def test_multiple_messages_in_one_feed(self):
        dec = FrameDecoder()
        dec.feed(encode_header(Get(0)) + encode_header(Quit()) + encode_header(Passed()))
        msgs = [m for m, _ in iter(dec)]
        assert msgs == [Get(0), Quit(), Passed()]

    def test_iterator_protocol(self):
        dec = FrameDecoder()
        dec.feed(encode_header(End(50)))
        assert list(dec) == [(End(50), b"")]
        assert list(dec) == []

    def test_buffered_property(self):
        dec = FrameDecoder()
        dec.feed(b"\x01")  # GET opcode, header incomplete
        assert dec.buffered == 1

    @given(st.lists(all_message_strategy(), min_size=1, max_size=20),
           st.integers(min_value=1, max_value=7))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_any_split(self, items, split):
        """Any message sequence survives arbitrary re-chunking of the byte
        stream — the core sans-io framing invariant."""
        wire = b"".join(encode_header(m) + p for m, p in items)
        dec = FrameDecoder()
        out = []
        for i in range(0, len(wire), split):
            dec.feed(wire[i: i + split])
            out.extend(iter(dec))
        assert out == items


class TestZeroCopyDecode:
    """The decoder's buffer-ownership contract: payloads come out as
    memoryviews, byte-identical under any split, valid for as long as the
    consumer holds them, and copy-free in the drained steady state."""

    def _frames(self, count=40, size=100):
        items = []
        for i in range(count):
            payload = bytes((i + j) % 251 for j in range(size))
            items.append((Data(i * size, size), payload))
        wire = b"".join(encode_header(m) + p for m, p in items)
        return items, wire

    def test_one_byte_feeds_yield_memoryview_payloads(self):
        items, wire = self._frames(count=10, size=33)
        dec = FrameDecoder()
        out = []
        for i in range(len(wire)):
            dec.feed(wire[i: i + 1])
            out.extend(iter(dec))
        assert len(out) == len(items)
        for (msg, payload), (emsg, epayload) in zip(out, items):
            assert msg == emsg
            assert isinstance(payload, memoryview)
            assert payload == epayload

    @given(st.integers(min_value=1, max_value=600))
    @settings(max_examples=40, deadline=None)
    def test_adversarial_splits_identical_payloads(self, split):
        items, wire = self._frames(count=15, size=120)
        dec = FrameDecoder()
        out = []
        for i in range(0, len(wire), split):
            dec.feed(wire[i: i + split])
            out.extend(iter(dec))
        assert [m for m, _ in out] == [m for m, _ in items]
        for (_, payload), (_, epayload) in zip(out, items):
            assert isinstance(payload, memoryview)
            assert bytes(payload) == epayload

    def test_views_stay_valid_across_buffer_rotation(self):
        # Tiny pool segments force many rotations; earlier payload views
        # must keep their bytes because the pool cannot recycle a buffer
        # that still has live exports.
        from repro.core import BufferPool, PerfStats

        stats = PerfStats()
        pool = BufferPool(512, stats=stats)
        dec = FrameDecoder(pool=pool, stats=stats)
        items, wire = self._frames(count=60, size=200)
        held = []
        for i in range(0, len(wire), 97):
            dec.feed(wire[i: i + 97])
            held.extend(iter(dec))
        for (_, payload), (_, epayload) in zip(held, items):
            assert bytes(payload) == epayload

    def test_writable_path_steady_state_has_zero_payload_copies(self):
        # Whole frames land per "receive" and are fully drained before the
        # next — the backpressured-pipeline steady state.  Rotations then
        # happen only between frames and must copy nothing.
        from repro.core import BufferPool, PerfStats

        stats = PerfStats()
        pool = BufferPool(1024, stats=stats)
        dec = FrameDecoder(pool=pool, stats=stats)
        items, _ = self._frames(count=200, size=300)
        for msg, payload in items:
            frame = encode_header(msg) + payload
            view = dec.writable(len(frame))
            view[: len(frame)] = frame
            view.release()
            dec.bytes_written(len(frame))
            got = dec.try_pop()
            assert got is not None and bytes(got[1]) == payload
            assert dec.try_pop() is None
        assert stats.frames_decoded == len(items)
        assert stats.payload_copy_events == 0
        assert stats.payload_bytes_copied == 0

    def test_partial_payload_carry_is_counted(self):
        # A payload straddling the buffer end is the one copy this data
        # plane makes — and it must be visible in the counters.
        from repro.core import BufferPool, PerfStats

        stats = PerfStats()
        pool = BufferPool(256, stats=stats)
        dec = FrameDecoder(pool=pool, stats=stats)
        # Park the parse position mid-buffer with a few empty frames.
        dec.feed(encode_header(Data(0, 0)) * 5)
        assert len(list(iter(dec))) == 5
        # Header + 50 payload bytes arrive together; the 300-byte payload
        # cannot fit in the 256-byte buffer, so the decoder rotates and
        # must carry (= copy) exactly those 50 received payload bytes.
        payload = bytes(i % 251 for i in range(300))
        dec.feed(encode_header(Data(0, len(payload))) + payload[:50])
        assert dec.try_pop() is None
        assert stats.payload_copy_events == 1
        assert stats.payload_bytes_copied == 50
        dec.feed(payload[50:])
        msg, got = dec.try_pop()
        assert msg == Data(0, len(payload))
        assert bytes(got) == payload
        assert stats.payload_copy_events == 1  # completion copied nothing

    def test_oversized_payload_header_rejected_before_alloc(self):
        from repro.core import MAX_RECEIVE_ALLOC
        import struct

        raw = bytes([Op.REPORT]) + struct.pack(">Q", MAX_RECEIVE_ALLOC + 1)
        dec = FrameDecoder()
        dec.feed(raw)
        with pytest.raises(FramingError):
            dec.try_pop()


class TestBlockingHelpers:
    def test_write_read_roundtrip(self):
        buf = io.BytesIO()
        write_message(buf, Data(10, 3), b"abc")
        write_message(buf, End(13))
        buf.seek(0)
        assert read_message(buf) == (Data(10, 3), b"abc")
        assert read_message(buf) == (End(13), b"")

    def test_payload_length_mismatch_rejected(self):
        with pytest.raises(FramingError):
            write_message(io.BytesIO(), Data(0, 5), b"abc")
        with pytest.raises(FramingError):
            write_message(io.BytesIO(), Report(2), b"abc")

    def test_eof_before_frame_raises_connectionerror(self):
        with pytest.raises(ConnectionError):
            read_message(io.BytesIO(b""))

    def test_eof_mid_frame_raises_connectionerror(self):
        raw = encode_header(Data(0, 100)) + b"only-a-little"
        with pytest.raises(ConnectionError):
            read_message(io.BytesIO(raw))

    def test_unknown_opcode_via_stream(self):
        with pytest.raises(FramingError):
            read_message(io.BytesIO(b"\xee"))
