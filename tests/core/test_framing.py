"""Tests for the wire framing: header codec, incremental decoder, and the
blocking file-like helpers."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Data,
    End,
    Forget,
    FrameDecoder,
    FramingError,
    Get,
    Op,
    PGet,
    Passed,
    Ping,
    Pong,
    Quit,
    Report,
    encode_header,
    read_message,
    write_message,
)
from repro.core.framing import header_size, payload_size

OFFSETS = st.integers(min_value=0, max_value=2**40)
SIZES = st.integers(min_value=0, max_value=1 << 20)


def all_message_strategy():
    """Strategy over every message type with valid fields and payloads."""
    payloads = st.binary(min_size=0, max_size=200)
    return st.one_of(
        st.builds(Get, OFFSETS).map(lambda m: (m, b"")),
        st.tuples(OFFSETS, st.integers(min_value=0, max_value=1000)).map(
            lambda ot: (PGet(ot[0], ot[0] + ot[1]), b"")
        ),
        st.builds(Forget, OFFSETS).map(lambda m: (m, b"")),
        st.tuples(OFFSETS, payloads).map(
            lambda op: (Data(op[0], len(op[1])), op[1])
        ),
        st.builds(End, OFFSETS).map(lambda m: (m, b"")),
        st.just((Quit(), b"")),
        payloads.map(lambda p: (Report(len(p)), p)),
        st.just((Passed(), b"")),
        st.builds(Ping, OFFSETS).map(lambda m: (m, b"")),
        st.builds(Pong, OFFSETS).map(lambda m: (m, b"")),
    )


class TestHeaderCodec:
    @pytest.mark.parametrize("msg", [
        Get(0), Get(2**40), PGet(5, 10), Forget(7), Data(3, 9),
        End(123), Quit(), Report(4), Passed(), Ping(1), Pong(1),
    ])
    def test_roundtrip_single(self, msg):
        dec = FrameDecoder()
        dec.feed(encode_header(msg))
        dec.feed(b"\x00" * payload_size(msg))
        got, payload = dec.try_pop()
        assert got == msg
        assert len(payload) == payload_size(msg)

    def test_header_size_matches_encoding(self):
        for msg in (Get(1), PGet(1, 2), Forget(1), Data(0, 0), End(1),
                    Quit(), Report(0), Passed(), Ping(9), Pong(9)):
            assert len(encode_header(msg)) == header_size(msg.op)

    def test_unknown_opcode_rejected(self):
        dec = FrameDecoder()
        dec.feed(b"\xff")
        with pytest.raises(FramingError):
            dec.try_pop()

    def test_oversized_data_header_rejected(self):
        # Forge a DATA header with an absurd size field.
        import struct
        raw = bytes([Op.DATA]) + struct.pack(">QQ", 0, 1 << 60)
        dec = FrameDecoder()
        dec.feed(raw)
        with pytest.raises(FramingError):
            dec.try_pop()

    def test_reversed_pget_on_wire_rejected(self):
        import struct
        raw = bytes([Op.PGET]) + struct.pack(">QQ", 10, 5)
        dec = FrameDecoder()
        dec.feed(raw)
        with pytest.raises(FramingError):
            dec.try_pop()


class TestFrameDecoder:
    def test_empty_returns_none(self):
        assert FrameDecoder().try_pop() is None

    def test_partial_header_waits(self):
        dec = FrameDecoder()
        raw = encode_header(Get(77))
        dec.feed(raw[:4])
        assert dec.try_pop() is None
        dec.feed(raw[4:])
        assert dec.try_pop() == (Get(77), b"")

    def test_partial_payload_waits(self):
        dec = FrameDecoder()
        payload = b"hello world"
        dec.feed(encode_header(Data(0, len(payload))))
        dec.feed(payload[:5])
        assert dec.try_pop() is None
        dec.feed(payload[5:])
        assert dec.try_pop() == (Data(0, len(payload)), payload)

    def test_multiple_messages_in_one_feed(self):
        dec = FrameDecoder()
        dec.feed(encode_header(Get(0)) + encode_header(Quit()) + encode_header(Passed()))
        msgs = [m for m, _ in iter(dec)]
        assert msgs == [Get(0), Quit(), Passed()]

    def test_iterator_protocol(self):
        dec = FrameDecoder()
        dec.feed(encode_header(End(50)))
        assert list(dec) == [(End(50), b"")]
        assert list(dec) == []

    def test_buffered_property(self):
        dec = FrameDecoder()
        dec.feed(b"\x01")  # GET opcode, header incomplete
        assert dec.buffered == 1

    @given(st.lists(all_message_strategy(), min_size=1, max_size=20),
           st.integers(min_value=1, max_value=7))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_any_split(self, items, split):
        """Any message sequence survives arbitrary re-chunking of the byte
        stream — the core sans-io framing invariant."""
        wire = b"".join(encode_header(m) + p for m, p in items)
        dec = FrameDecoder()
        out = []
        for i in range(0, len(wire), split):
            dec.feed(wire[i: i + split])
            out.extend(iter(dec))
        assert out == items


class TestBlockingHelpers:
    def test_write_read_roundtrip(self):
        buf = io.BytesIO()
        write_message(buf, Data(10, 3), b"abc")
        write_message(buf, End(13))
        buf.seek(0)
        assert read_message(buf) == (Data(10, 3), b"abc")
        assert read_message(buf) == (End(13), b"")

    def test_payload_length_mismatch_rejected(self):
        with pytest.raises(FramingError):
            write_message(io.BytesIO(), Data(0, 5), b"abc")
        with pytest.raises(FramingError):
            write_message(io.BytesIO(), Report(2), b"abc")

    def test_eof_before_frame_raises_connectionerror(self):
        with pytest.raises(ConnectionError):
            read_message(io.BytesIO(b""))

    def test_eof_mid_frame_raises_connectionerror(self):
        raw = encode_header(Data(0, 100)) + b"only-a-little"
        with pytest.raises(ConnectionError):
            read_message(io.BytesIO(raw))

    def test_unknown_opcode_via_stream(self):
        with pytest.raises(FramingError):
            read_message(io.BytesIO(b"\xee"))
