"""Tests for the per-node transfer state machine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    KascadeConfig,
    OfferKind,
    ProtocolError,
    SourceKind,
    TransferReport,
)
from repro.core.node_state import NodeTransferState, Phase


def make_state(name="n2", chunk=100, bufchunks=3, source_kind=None):
    cfg = KascadeConfig(chunk_size=chunk, buffer_chunks=bufchunks)
    return NodeTransferState(name, cfg, source_kind=source_kind)


class TestDataPlane:
    def test_in_order_data_accepted(self):
        s = make_state()
        s.on_data(0, b"a" * 100)
        s.on_data(100, b"b" * 50)
        assert s.offset == 150

    def test_gap_rejected(self):
        s = make_state()
        s.on_data(0, b"a" * 100)
        with pytest.raises(ProtocolError):
            s.on_data(200, b"x")

    def test_overlap_rejected(self):
        s = make_state()
        s.on_data(0, b"a" * 100)
        with pytest.raises(ProtocolError):
            s.on_data(50, b"x")

    def test_end_matches_offset(self):
        s = make_state()
        s.on_data(0, b"a" * 100)
        s.on_end(100)
        assert s.phase is Phase.ENDED
        assert s.complete

    def test_end_wrong_total_rejected(self):
        s = make_state()
        s.on_data(0, b"a" * 100)
        with pytest.raises(ProtocolError):
            s.on_end(150)

    def test_data_after_end_rejected(self):
        s = make_state()
        s.on_end(0)
        with pytest.raises(ProtocolError):
            s.on_data(0, b"x")

    def test_duplicate_end_rejected(self):
        s = make_state()
        s.on_end(0)
        with pytest.raises(ProtocolError):
            s.on_end(0)

    def test_quit_aborts(self):
        s = make_state()
        s.on_data(0, b"a" * 10)
        s.on_quit()
        assert s.phase is Phase.ABORTED
        assert not s.complete


class TestHandshakes:
    def test_get_within_buffer(self):
        s = make_state()
        s.on_data(0, b"a" * 100)
        offer = s.answer_get(0)
        assert offer.kind is OfferKind.SERVE_FROM_BUFFER
        assert offer.resume_at == 0

    def test_get_at_live_edge(self):
        s = make_state()
        s.on_data(0, b"a" * 100)
        offer = s.answer_get(100)
        assert offer.kind is OfferKind.SERVE_FROM_BUFFER

    def test_get_below_window_on_relay_redirects_to_head(self):
        s = make_state(bufchunks=1)
        s.on_data(0, b"a" * 100)
        s.on_data(100, b"b" * 100)  # evicts [0, 100)
        offer = s.answer_get(0)
        assert offer.kind is OfferKind.NEED_HEAD_RANGE
        assert offer.resume_at == 100

    def test_get_below_window_on_stream_head_forgets(self):
        s = make_state(bufchunks=1, source_kind=SourceKind.STREAM)
        s.on_data(0, b"a" * 100)
        s.on_data(100, b"b" * 100)
        offer = s.answer_get(0)
        assert offer.kind is OfferKind.FORGET
        assert offer.resume_at == 100

    def test_get_below_window_on_file_head_pgets(self):
        # A file-backed head *could* answer directly, but the protocol keeps
        # one path: redirect to PGET, which the head then serves itself.
        s = make_state(bufchunks=1, source_kind=SourceKind.SEEKABLE_FILE)
        s.on_data(0, b"a" * 100)
        s.on_data(100, b"b" * 100)
        assert s.answer_get(0).kind is OfferKind.NEED_HEAD_RANGE

    def test_pget_on_relay_rejected(self):
        s = make_state()
        with pytest.raises(ProtocolError):
            s.answer_pget(0, 10)

    def test_pget_on_file_head_serves(self):
        s = make_state(source_kind=SourceKind.SEEKABLE_FILE)
        s.on_data(0, b"a" * 100)
        offer = s.answer_pget(0, 100)
        assert offer.kind is OfferKind.SERVE_FROM_BUFFER

    def test_pget_beyond_produced_rejected(self):
        s = make_state(source_kind=SourceKind.SEEKABLE_FILE)
        s.on_data(0, b"a" * 100)
        with pytest.raises(ProtocolError):
            s.answer_pget(0, 200)

    def test_pget_on_stream_head_within_buffer(self):
        s = make_state(source_kind=SourceKind.STREAM)
        s.on_data(0, b"a" * 100)
        assert s.answer_pget(0, 100).kind is OfferKind.SERVE_FROM_BUFFER

    def test_pget_on_stream_head_lost(self):
        s = make_state(bufchunks=1, source_kind=SourceKind.STREAM)
        s.on_data(0, b"a" * 100)
        s.on_data(100, b"b" * 100)
        offer = s.answer_pget(0, 100)
        assert offer.kind is OfferKind.FORGET
        assert offer.resume_at == 100


class TestReports:
    def test_record_failure(self):
        s = make_state("n4")
        s.on_data(0, b"a" * 60)
        rec = s.record_failure("n5", "timeout")
        assert rec.detected_by == "n4"
        assert rec.at_offset == 60
        assert s.report.failed_nodes == ["n5"]

    def test_merge_upstream_before_local(self):
        s = make_state("n4")
        s.record_failure("n5", "timeout")
        upstream = TransferReport()
        upstream.add(
            __import__("repro.core", fromlist=["FailureRecord"]).FailureRecord(
                "n2", "n1", 0, "connect-refused"
            )
        )
        s.merge_upstream_report(upstream.encode())
        assert s.report.failed_nodes == ["n2", "n5"]


class TestLifecycle:
    def test_passed_after_end(self):
        s = make_state()
        s.on_end(0)
        s.on_passed()
        assert s.phase is Phase.DONE

    def test_passed_after_abort(self):
        s = make_state()
        s.on_quit()
        s.on_passed()
        assert s.phase is Phase.DONE

    def test_passed_while_streaming_rejected(self):
        s = make_state()
        with pytest.raises(ProtocolError):
            s.on_passed()

    def test_quit_after_done_rejected(self):
        s = make_state()
        s.on_end(0)
        s.on_passed()
        with pytest.raises(ProtocolError):
            s.on_quit()


class TestProperties:
    @given(st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_offset_tracks_sum(self, sizes):
        s = make_state(chunk=50, bufchunks=4)
        pos = 0
        for n in sizes:
            s.on_data(pos, b"x" * n)
            pos += n
        assert s.offset == pos
        s.on_end(pos)
        assert s.complete

    @given(
        st.lists(st.integers(min_value=1, max_value=40), min_size=2, max_size=20),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_answer_get_never_loses_bytes(self, sizes, data):
        """For any request at or below the live edge, the offer either
        serves exactly from the requested offset or redirects with a
        resume point that equals the buffer minimum — no byte in between
        is ever skipped."""
        s = make_state(chunk=40, bufchunks=2)
        pos = 0
        for n in sizes:
            s.on_data(pos, b"x" * n)
            pos += n
        req = data.draw(st.integers(min_value=0, max_value=pos))
        offer = s.answer_get(req)
        if offer.kind is OfferKind.SERVE_FROM_BUFFER:
            assert offer.resume_at == req
        else:
            assert offer.resume_at == s.buffer.min_offset
            assert req < offer.resume_at
