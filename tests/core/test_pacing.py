"""Tests for the token-bucket pacing (pure time arithmetic)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pacing import TokenBucket


class TestReserve:
    def test_first_burst_free(self):
        bucket = TokenBucket(rate=100.0, burst=50.0)
        assert bucket.reserve(50.0, now=0.0) == 0.0

    def test_pacing_after_burst(self):
        bucket = TokenBucket(rate=100.0, burst=0.0)
        assert bucket.reserve(100.0, now=0.0) == 0.0
        # The line is busy until t=1.0: sending again at t=0 must wait.
        assert bucket.reserve(100.0, now=0.0) == pytest.approx(1.0)
        assert bucket.reserve(100.0, now=0.0) == pytest.approx(2.0)

    def test_idle_earns_credit_up_to_burst(self):
        bucket = TokenBucket(rate=100.0, burst=30.0)
        bucket.reserve(100.0, now=0.0)          # busy until t=1.0
        # Long idle: at t=10 the credit is capped at burst (0.3 s worth).
        assert bucket.reserve(30.0, now=10.0) == 0.0
        assert bucket.reserve(30.0, now=10.0) == 0.0  # the earned burst
        delay = bucket.reserve(100.0, now=10.0)
        assert delay == pytest.approx(0.3, abs=0.01)

    def test_sustained_rate_converges_to_limit(self):
        bucket = TokenBucket(rate=1000.0, burst=100.0)
        now = 0.0
        sent = 0.0
        for _ in range(100):
            delay = bucket.reserve(50.0, now)
            now += delay  # caller sleeps, then transmits instantly
            sent += 50.0
        assert sent / now == pytest.approx(1000.0, rel=0.05)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=10.0, burst=-1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=10.0).reserve(-1.0, now=0.0)

    @given(
        rate=st.floats(min_value=10.0, max_value=1e6),
        chunks=st.lists(st.floats(min_value=1.0, max_value=1e5),
                        min_size=5, max_size=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_never_exceeds_rate_plus_burst(self, rate, chunks):
        """Property: total bytes admitted by time T never exceeds
        burst + rate*T (the defining token-bucket envelope)."""
        bucket = TokenBucket(rate=rate)
        now = 0.0
        total = 0.0
        for n in chunks:
            delay = bucket.reserve(n, now)
            now += delay
            total += n
            assert total <= bucket.burst + rate * now + 1e-6 * total + n


class TestRuntimeIntegration:
    def test_broadcast_respects_limit(self):
        import time
        from repro.core import KascadeConfig, PatternSource
        from repro.runtime import LocalBroadcast

        limit = 8 * 1024 * 1024  # 8 MiB/s
        size = 4 * 1024 * 1024   # 4 MiB -> >= ~0.35 s even with burst credit
        config = KascadeConfig(chunk_size=256 * 1024, bandwidth_limit=limit)
        started = time.monotonic()
        result = LocalBroadcast(
            PatternSource(size), ["n2", "n3"], config=config,
        ).run(timeout=60)
        elapsed = time.monotonic() - started
        assert result.ok
        # burst forgives ~0.25 s worth; the rest must be paced.
        assert elapsed >= (size - limit * 0.25) / limit * 0.9

    def test_unlimited_is_fast(self):
        import time
        from repro.core import KascadeConfig, PatternSource
        from repro.runtime import LocalBroadcast

        size = 4 * 1024 * 1024
        config = KascadeConfig(chunk_size=256 * 1024)
        started = time.monotonic()
        result = LocalBroadcast(
            PatternSource(size), ["n2", "n3"], config=config,
        ).run(timeout=60)
        elapsed = time.monotonic() - started
        assert result.ok
        assert elapsed < 2.0

    def test_invalid_limit_rejected(self):
        from repro.core import ConfigError, KascadeConfig
        with pytest.raises(ConfigError):
            KascadeConfig(bandwidth_limit=0.0)
