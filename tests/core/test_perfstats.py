"""Tests for the data-plane performance counters."""

from repro.core import PerfStats, get_stats, reset_stats


class TestPerfStats:
    def test_starts_zeroed(self):
        stats = PerfStats()
        assert all(v == 0 for v in stats.snapshot().values())

    def test_copied(self):
        stats = PerfStats()
        stats.copied(100)
        stats.copied(28)
        assert stats.payload_copy_events == 2
        assert stats.payload_bytes_copied == 128

    def test_syscall_counters(self):
        stats = PerfStats()
        stats.recv_syscall(10)
        stats.send_syscall(20)
        stats.send_syscall(5)
        stats.sendfile_syscall(30)
        assert stats.syscalls_recv == 1
        assert stats.syscalls_send == 2
        assert stats.syscalls_sendfile == 1
        assert stats.syscalls == 4
        assert stats.bytes_received == 10
        assert stats.bytes_sent == 55

    def test_frames_per_second(self):
        stats = PerfStats()
        stats.frames_decoded = 500
        rate = stats.frames_per_second(now=stats._t0 + 2.0)
        assert rate == 250.0

    def test_frames_per_second_zero_elapsed(self):
        stats = PerfStats()
        assert stats.frames_per_second(now=stats._t0) == 0.0

    def test_reset(self):
        stats = PerfStats()
        stats.copied(7)
        stats.reset()
        assert stats.payload_copy_events == 0
        assert stats.payload_bytes_copied == 0

    def test_snapshot_is_copy(self):
        stats = PerfStats()
        snap = stats.snapshot()
        stats.copied(1)
        assert snap["payload_copy_events"] == 0

    def test_repr_mentions_nonzero(self):
        stats = PerfStats()
        assert "all zero" in repr(stats)
        stats.copied(3)
        assert "payload_copy_events=1" in repr(stats)

    def test_global_instance_stable(self):
        assert get_stats() is get_stats()

    def test_reset_stats_zeroes_global(self):
        get_stats().copied(1)
        reset_stats()
        assert get_stats().payload_copy_events == 0
