"""Tests for pipeline planning and node ordering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import PipelineError, PipelinePlan, hostname_sort_key, order_by_hostname


class TestHostnameOrdering:
    def test_numeric_natural_sort(self):
        hosts = ["node-10", "node-2", "node-1"]
        assert order_by_hostname(hosts) == ["node-1", "node-2", "node-10"]

    def test_cluster_prefix_groups(self):
        hosts = ["parapide-2", "paradent-30", "paradent-4", "parapide-1"]
        assert order_by_hostname(hosts) == [
            "paradent-4", "paradent-30", "parapide-1", "parapide-2",
        ]

    def test_multi_number_names(self):
        hosts = ["r2n10", "r2n9", "r1n20"]
        assert order_by_hostname(hosts) == ["r1n20", "r2n9", "r2n10"]

    def test_sort_key_stable_types(self):
        # Must never raise on mixed text/digit comparisons.
        sorted(["a1", "1a", "a", "1", "a10b2"], key=hostname_sort_key)


class TestPipelinePlan:
    def test_build_default_order(self):
        plan = PipelinePlan.build("head", ["n3", "n1", "n2"])
        assert plan.chain == ("head", "n1", "n2", "n3")

    def test_build_given_order(self):
        plan = PipelinePlan.build("head", ["n3", "n1", "n2"], order="given")
        assert plan.receivers == ("n3", "n1", "n2")

    def test_build_random_order_is_permutation(self):
        rng = np.random.default_rng(42)
        plan = PipelinePlan.build("head", [f"n{i}" for i in range(20)],
                                  order="random", rng=rng)
        assert sorted(plan.receivers) == sorted(f"n{i}" for i in range(20))

    def test_random_requires_rng(self):
        with pytest.raises(PipelineError):
            PipelinePlan.build("head", ["a"], order="random")

    def test_unknown_order_rejected(self):
        with pytest.raises(PipelineError):
            PipelinePlan.build("head", ["a"], order="bogus")

    def test_empty_receivers_rejected(self):
        with pytest.raises(PipelineError):
            PipelinePlan(head="h", receivers=())

    def test_duplicates_rejected(self):
        with pytest.raises(PipelineError):
            PipelinePlan(head="h", receivers=("a", "a"))
        with pytest.raises(PipelineError):
            PipelinePlan(head="h", receivers=("h",))

    def test_navigation(self):
        plan = PipelinePlan(head="n1", receivers=("n2", "n3", "n4"))
        assert plan.successor("n1") == "n2"
        assert plan.successor("n3") == "n4"
        assert plan.successor("n4") is None
        assert plan.predecessor("n1") is None
        assert plan.predecessor("n2") == "n1"
        assert plan.successors_after("n2") == ("n3", "n4")
        assert len(plan) == 4

    def test_index_of_unknown_node(self):
        plan = PipelinePlan(head="n1", receivers=("n2",))
        with pytest.raises(PipelineError):
            plan.index_of("ghost")

    def test_is_tail(self):
        plan = PipelinePlan(head="n1", receivers=("n2", "n3", "n4"))
        assert plan.is_tail("n4")
        assert not plan.is_tail("n3")
        assert plan.is_tail("n3", dead=["n4"])
        assert plan.is_tail("n2", dead=["n3", "n4"])
        assert not plan.is_tail("n2", dead=["n3"])

    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_random_order_always_permutation(self, n, seed):
        rng = np.random.default_rng(seed)
        receivers = [f"node-{i}" for i in range(n)]
        plan = PipelinePlan.build("head", receivers, order="random", rng=rng)
        assert sorted(plan.receivers) == sorted(receivers)
