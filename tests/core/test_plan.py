"""The ChainPlan / StripePlan API (`repro.core.plan`).

The plan is the PR-7 redesign's contract: an explicit, serializable
description of who feeds whom per stripe, consumed identically by the
local, procs, and simnet backends.  Under test:

* stripe construction — rotated receiver orders, the k == 1 degenerate
  case being exactly the legacy single chain;
* navigation parity — a StripePlan *is* a PipelinePlan, so successor/
  predecessor/is_tail work unchanged per stripe;
* the wire form — JSON roundtrip, versioning;
* re-planning — dropping dead nodes from every stripe;
* the deprecation shim — bare PipelinePlans still work, with a warning.
"""

import json

import pytest

from repro.core.errors import PipelineError
from repro.core.pipeline import PipelinePlan
from repro.core.plan import ChainPlan, StripePlan, coerce_stripe_plan

RECEIVERS = ("n2", "n3", "n4", "n5")


class TestStripePlan:
    def test_is_a_pipeline_plan(self):
        sp = StripePlan(head="n1", receivers=RECEIVERS, stripe=1, of=3)
        assert isinstance(sp, PipelinePlan)
        assert sp.successor("n2") == "n3"
        assert sp.predecessor("n2") == "n1"
        assert sp.is_tail("n5")

    def test_labels_validated(self):
        with pytest.raises(PipelineError):
            StripePlan(head="n1", receivers=RECEIVERS, stripe=3, of=3)
        with pytest.raises(PipelineError):
            StripePlan(head="n1", receivers=RECEIVERS, stripe=0, of=0)

    def test_from_pipeline(self):
        base = PipelinePlan(head="n1", receivers=RECEIVERS)
        sp = StripePlan.from_pipeline(base, stripe=2, of=4)
        assert sp.receivers == base.receivers
        assert (sp.stripe, sp.of) == (2, 4)


class TestChainPlanBuild:
    def test_single_stripe_matches_legacy_plan(self):
        plan = ChainPlan.build("n1", RECEIVERS, stripes=1, order="given")
        legacy = PipelinePlan.build("n1", RECEIVERS, order="given")
        assert plan.stripe_count == 1
        assert plan.stripe(0).receivers == legacy.receivers
        assert plan.receivers == legacy.receivers

    def test_stripes_rotate_the_order(self):
        plan = ChainPlan.build("n1", RECEIVERS, stripes=4, order="given")
        assert [sp.receivers for sp in plan] == [
            ("n2", "n3", "n4", "n5"),
            ("n3", "n4", "n5", "n2"),
            ("n4", "n5", "n2", "n3"),
            ("n5", "n2", "n3", "n4"),
        ]
        # Every stripe covers the same node set with the same head.
        assert all(set(sp.receivers) == set(RECEIVERS) for sp in plan)
        assert all(sp.head == "n1" for sp in plan)

    def test_more_stripes_than_receivers_spread_evenly(self):
        plan = ChainPlan.build("n1", ("n2", "n3"), stripes=4, order="given")
        starts = [sp.receivers[0] for sp in plan]
        assert starts == ["n2", "n2", "n3", "n3"]

    def test_stripe_index_bounds(self):
        plan = ChainPlan.build("n1", RECEIVERS, stripes=2, order="given")
        assert len(plan) == 2
        with pytest.raises(PipelineError):
            plan.stripe(2)

    def test_mismatched_orders_rejected(self):
        with pytest.raises(PipelineError):
            ChainPlan.from_orders("n1", [["n2", "n3"], ["n3", "n9"]])

    def test_base_is_a_plain_pipeline_plan(self):
        plan = ChainPlan.build("n1", RECEIVERS, stripes=3, order="given")
        base = plan.base
        assert type(base) is PipelinePlan
        assert base.receivers == plan.stripe(0).receivers


class TestChainPlanWireForm:
    def test_json_roundtrip(self):
        plan = ChainPlan.build("n1", RECEIVERS, stripes=3, order="given")
        restored = ChainPlan.from_json(plan.to_json())
        assert restored == plan

    def test_dict_shape_is_versioned(self):
        plan = ChainPlan.build("n1", RECEIVERS, stripes=2, order="given")
        doc = plan.to_dict()
        assert doc["version"] == 1
        assert doc["head"] == "n1"
        assert doc["stripes"] == [list(sp.receivers) for sp in plan]
        # and it is plain JSON all the way down
        assert json.loads(json.dumps(doc)) == doc

    def test_unknown_version_rejected(self):
        doc = ChainPlan.single("n1", RECEIVERS).to_dict()
        doc["version"] = 99
        with pytest.raises(PipelineError, match="version"):
            ChainPlan.from_dict(doc)


class TestReplan:
    def test_dead_node_dropped_from_every_stripe(self):
        plan = ChainPlan.build("n1", RECEIVERS, stripes=3, order="given")
        replanned = plan.replan_without(("n4",))
        assert replanned.stripe_count == 3
        for sp in replanned:
            assert "n4" not in sp.receivers
            assert len(sp.receivers) == 3
        # Surviving relative order is preserved per stripe.
        assert replanned.stripe(0).receivers == ("n2", "n3", "n5")

    def test_head_death_reroots_to_most_senior_survivor(self):
        plan = ChainPlan.single("n1", RECEIVERS)
        replanned = plan.replan_without(("n1",))
        assert replanned.head == "n2"
        assert replanned.stripe(0).receivers == ("n3", "n4", "n5")

    def test_head_death_with_no_survivors_rejected(self):
        plan = ChainPlan.single("n1", RECEIVERS)
        with pytest.raises(PipelineError):
            plan.replan_without(("n1",) + RECEIVERS)

    def test_noop_replan(self):
        plan = ChainPlan.build("n1", RECEIVERS, stripes=2, order="given")
        assert plan.replan_without(()) == plan


class TestReroot:
    def test_surviving_order_preserved(self):
        plan = ChainPlan.single("n1", RECEIVERS)
        rerooted = plan.reroot("n3")
        assert rerooted.head == "n3"
        # The promoted node leads; everyone else keeps chain order.
        assert rerooted.stripe(0).receivers == ("n2", "n4", "n5")
        assert rerooted.receivers == ("n2", "n4", "n5")

    def test_dead_nodes_dropped_from_every_stripe(self):
        plan = ChainPlan.build("n1", RECEIVERS, stripes=3, order="given")
        rerooted = plan.reroot("n3", dead=("n5",))
        assert rerooted.stripe_count == 3
        for sp in rerooted:
            assert sp.head == "n3"
            assert set(sp.receivers) == {"n2", "n4"}

    def test_old_head_always_dropped(self):
        plan = ChainPlan.single("n1", RECEIVERS)
        rerooted = plan.reroot("n2")
        assert "n1" not in rerooted.receivers
        assert "n1" != rerooted.head

    def test_non_receiver_rejected(self):
        plan = ChainPlan.single("n1", RECEIVERS)
        with pytest.raises(PipelineError, match="not a receiver"):
            plan.reroot("n9")
        with pytest.raises(PipelineError, match="not a receiver"):
            plan.reroot("n1")  # the head is not a receiver of itself

    def test_dead_candidate_rejected(self):
        plan = ChainPlan.single("n1", RECEIVERS)
        with pytest.raises(PipelineError, match="dead node"):
            plan.reroot("n3", dead=("n3",))

    def test_roundtrips_through_wire_form(self):
        plan = ChainPlan.build("n1", RECEIVERS, stripes=2, order="given")
        rerooted = plan.reroot("n2")
        assert ChainPlan.from_json(rerooted.to_json()) == rerooted


class TestCoercionShim:
    def test_stripe_plan_passes_through(self):
        sp = StripePlan(head="n1", receivers=RECEIVERS)
        assert coerce_stripe_plan(sp, owner="X") is sp

    def test_single_stripe_chain_plan_unwraps(self):
        plan = ChainPlan.single("n1", RECEIVERS)
        assert coerce_stripe_plan(plan, owner="X") == plan.stripe(0)

    def test_multi_stripe_chain_plan_rejected(self):
        plan = ChainPlan.build("n1", RECEIVERS, stripes=2, order="given")
        with pytest.raises(PipelineError, match="single stripe"):
            coerce_stripe_plan(plan, owner="X")

    def test_bare_pipeline_plan_warns_and_adapts(self):
        base = PipelinePlan(head="n1", receivers=RECEIVERS)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            sp = coerce_stripe_plan(base, owner="X")
        assert isinstance(sp, StripePlan)
        assert sp.receivers == base.receivers
        assert (sp.stripe, sp.of) == (0, 1)

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            coerce_stripe_plan("n1,n2", owner="X")
