"""Tests for the recovery decision logic — the heart of §III-D."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    OfferKind,
    PipelinePlan,
    SourceKind,
    negotiate_offset,
    next_alive,
    report_route,
)


def make_plan(n=10):
    return PipelinePlan(head="n1", receivers=tuple(f"n{i}" for i in range(2, n + 1)))


class TestNextAlive:
    def test_no_failures(self):
        plan = make_plan()
        assert next_alive(plan, "n1", set()) == "n2"
        assert next_alive(plan, "n5", set()) == "n6"

    def test_single_failure_skipped(self):
        plan = make_plan()
        assert next_alive(plan, "n4", {"n5"}) == "n6"

    def test_adjacent_failures_skipped(self):
        # "in case of multiple adjacent failures nj is not ni+1"
        plan = make_plan()
        assert next_alive(plan, "n4", {"n5", "n6", "n7"}) == "n8"

    def test_tail_returns_none(self):
        plan = make_plan(5)
        assert next_alive(plan, "n5", set()) is None
        assert next_alive(plan, "n3", {"n4", "n5"}) is None

    def test_max_skips_bound(self):
        plan = make_plan()
        assert next_alive(plan, "n2", {"n3", "n4"}, max_skips=2) == "n5"
        assert next_alive(plan, "n2", {"n3", "n4", "n5"}, max_skips=2) is None

    def test_none_max_skips_is_unbounded(self):
        plan = make_plan()
        dead = {f"n{i}" for i in range(2, 10)}
        assert next_alive(plan, "n1", dead) == "n10"
        assert next_alive(plan, "n1", dead, max_skips=None) == "n10"

    def test_zero_max_skips_steps_over_none(self):
        # 0 is a real bound now (not the old "unbounded" sentinel): the
        # immediate successor must be alive or there is no successor.
        plan = make_plan()
        assert next_alive(plan, "n2", set(), max_skips=0) == "n3"
        assert next_alive(plan, "n2", {"n3"}, max_skips=0) is None


class TestNegotiateOffset:
    def test_request_within_buffer(self):
        offer = negotiate_offset(100, buffer_min=50, buffer_end=200,
                                 source=SourceKind.STREAM)
        assert offer.kind is OfferKind.SERVE_FROM_BUFFER
        assert offer.resume_at == 100

    def test_request_at_live_edge(self):
        offer = negotiate_offset(200, 50, 200, SourceKind.STREAM)
        assert offer.kind is OfferKind.SERVE_FROM_BUFFER
        assert offer.resume_at == 200

    def test_request_at_buffer_min(self):
        offer = negotiate_offset(50, 50, 200, SourceKind.STREAM)
        assert offer.kind is OfferKind.SERVE_FROM_BUFFER

    def test_hole_with_file_source_pgets(self):
        offer = negotiate_offset(10, 50, 200, SourceKind.SEEKABLE_FILE)
        assert offer.kind is OfferKind.NEED_HEAD_RANGE
        assert offer.resume_at == 50  # receiver PGETs [10, 50) from head

    def test_hole_with_stream_source_forgets(self):
        offer = negotiate_offset(10, 50, 200, SourceKind.STREAM)
        assert offer.kind is OfferKind.FORGET
        assert offer.resume_at == 50

    def test_request_beyond_live_edge_rejected(self):
        with pytest.raises(ValueError):
            negotiate_offset(201, 50, 200, SourceKind.STREAM)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            negotiate_offset(-1, 0, 10, SourceKind.STREAM)

    @given(
        requested=st.integers(min_value=0, max_value=1000),
        bmin=st.integers(min_value=0, max_value=1000),
        span=st.integers(min_value=0, max_value=1000),
        source=st.sampled_from(list(SourceKind)),
    )
    @settings(max_examples=100, deadline=None)
    def test_never_skips_bytes(self, requested, bmin, span, source):
        """Whatever the offer, the receiver can always obtain the bytes
        [requested, resume_at) from somewhere or the transfer aborts —
        the offer never silently jumps the stream forward."""
        bend = bmin + span
        if requested > bend:
            with pytest.raises(ValueError):
                negotiate_offset(requested, bmin, bend, source)
            return
        offer = negotiate_offset(requested, bmin, bend, source)
        if offer.kind is OfferKind.SERVE_FROM_BUFFER:
            assert offer.resume_at == requested
            assert bmin <= requested <= bend
        elif offer.kind is OfferKind.NEED_HEAD_RANGE:
            assert source is SourceKind.SEEKABLE_FILE
            assert requested < offer.resume_at == bmin
        else:
            assert source is SourceKind.STREAM
            assert requested < bmin


class TestReportRoute:
    def test_no_failures_full_chain(self):
        plan = make_plan(5)
        assert list(report_route(plan, set())) == ["n1", "n2", "n3", "n4", "n5"]

    def test_dead_nodes_excluded(self):
        plan = make_plan(5)
        assert list(report_route(plan, {"n3", "n5"})) == ["n1", "n2", "n4"]

    def test_tail_is_last_alive(self):
        plan = make_plan(5)
        assert list(report_route(plan, {"n5"}))[-1] == "n4"
