"""Tests for failure report serialization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FailureRecord, ProtocolError, TransferReport

NAMES = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=0x2FF), max_size=30
)

RECORDS = st.builds(
    FailureRecord,
    node=NAMES,
    detected_by=NAMES,
    at_offset=st.integers(min_value=0, max_value=2**50),
    reason=st.text(max_size=50),
)


class TestTransferReport:
    def test_empty_report(self):
        rep = TransferReport()
        assert not rep
        assert len(rep) == 0
        assert rep.failed_nodes == []
        assert "no failures" in rep.summary()

    def test_roundtrip_simple(self):
        rep = TransferReport()
        rep.add(FailureRecord("n5", "n4", 1024, "timeout"))
        rep.add(FailureRecord("n9", "n8", 4096, "connection-reset"))
        decoded = TransferReport.decode(rep.encode())
        assert decoded.failures == rep.failures

    def test_merge(self):
        a = TransferReport([FailureRecord("n2", "n1", 0, "x")])
        b = TransferReport([FailureRecord("n3", "n2", 1, "y")])
        a.merge(b)
        assert [r.node for r in a.failures] == ["n2", "n3"]

    def test_failed_nodes_dedup_preserves_order(self):
        rep = TransferReport([
            FailureRecord("n5", "n4", 0, "timeout"),
            FailureRecord("n2", "n1", 0, "timeout"),
            FailureRecord("n5", "n6", 0, "reconfirmed"),
        ])
        assert rep.failed_nodes == ["n5", "n2"]

    def test_summary_mentions_nodes(self):
        rep = TransferReport([FailureRecord("n7", "n6", 0, "timeout")])
        assert "n7" in rep.summary()

    def test_decode_garbage(self):
        with pytest.raises(ProtocolError):
            TransferReport.decode(b"nope")
        with pytest.raises(ProtocolError):
            TransferReport.decode(b"")

    def test_decode_bad_magic(self):
        raw = TransferReport().encode()
        with pytest.raises(ProtocolError):
            TransferReport.decode(b"XXXX" + raw[4:])

    def test_decode_truncated(self):
        rep = TransferReport([FailureRecord("node-1", "node-0", 5, "timeout")])
        raw = rep.encode()
        with pytest.raises(ProtocolError):
            TransferReport.decode(raw[:-3])

    def test_decode_trailing_garbage(self):
        raw = TransferReport().encode() + b"extra"
        with pytest.raises(ProtocolError):
            TransferReport.decode(raw)

    @given(st.lists(RECORDS, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, records):
        rep = TransferReport(list(records))
        assert TransferReport.decode(rep.encode()).failures == records
