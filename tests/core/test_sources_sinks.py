"""Tests for head-node sources and receiver sinks."""

import errno
import io
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    BufferSink,
    BytesSource,
    DataLossError,
    FileSource,
    HashingSink,
    NullSink,
    PatternSource,
    SourceKind,
    StreamSource,
    open_sink,
)
from repro.core.sinks import FileSink
from repro.core.sources import open_source


def drain(source, chunk=7):
    out = b""
    while True:
        piece = source.read_chunk(chunk)
        if not piece:
            return out
        out += piece


class TestBytesSource:
    def test_sequential_read(self):
        src = BytesSource(b"hello world")
        assert drain(src, 4) == b"hello world"

    def test_range_read(self):
        src = BytesSource(b"hello world")
        assert src.read_range(6, 5) == b"world"

    def test_range_beyond_end(self):
        src = BytesSource(b"abc")
        with pytest.raises(DataLossError):
            src.read_range(1, 5)

    def test_kind(self):
        assert BytesSource(b"").kind is SourceKind.SEEKABLE_FILE


class TestStreamSource:
    def test_not_seekable(self):
        src = StreamSource(io.BytesIO(b"data"))
        assert src.kind is SourceKind.STREAM
        with pytest.raises(DataLossError):
            src.read_range(0, 2)

    def test_sequential(self):
        src = StreamSource(io.BytesIO(b"streaming-data"))
        assert drain(src, 3) == b"streaming-data"


class TestFileSource:
    def test_read_and_range(self, tmp_path):
        p = tmp_path / "blob.bin"
        p.write_bytes(b"0123456789" * 10)
        src = FileSource(p)
        assert src.size == 100
        assert src.read_chunk(10) == b"0123456789"
        # PGET-style range read must not disturb the sequential cursor.
        assert src.read_range(50, 5) == b"01234"
        assert src.read_chunk(5) == b"01234"
        src.close()

    def test_open_source_path(self, tmp_path):
        p = tmp_path / "x.bin"
        p.write_bytes(b"zz")
        with open_source(str(p)) as src:
            assert drain(src) == b"zz"


class TestPatternSource:
    def test_size_respected(self):
        src = PatternSource(1000, seed=3)
        assert len(drain(src, 64)) == 1000

    def test_deterministic(self):
        a = drain(PatternSource(500, seed=1), 13)
        b = drain(PatternSource(500, seed=1), 64)
        assert a == b

    def test_seed_changes_content(self):
        a = drain(PatternSource(100, seed=1))
        b = drain(PatternSource(100, seed=2))
        assert a != b

    def test_range_matches_sequential(self):
        src = PatternSource(1000, seed=9)
        whole = drain(src, 37)
        fresh = PatternSource(1000, seed=9)
        assert fresh.read_range(123, 77) == whole[123:200]
        assert fresh.expected_bytes(0, 1000) == whole

    def test_range_beyond_size(self):
        with pytest.raises(DataLossError):
            PatternSource(10).read_range(5, 20)

    def test_zero_size(self):
        src = PatternSource(0)
        assert src.read_chunk(10) == b""

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            PatternSource(-1)

    @given(size=st.integers(min_value=0, max_value=3000),
           off=st.integers(min_value=0, max_value=3000),
           n=st.integers(min_value=0, max_value=300),
           seed=st.integers(min_value=0, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_any_range_consistent(self, size, off, n, seed):
        src = PatternSource(size, seed=seed)
        whole = src.expected_bytes(0, size)
        if off + n <= size:
            assert src.read_range(off, n) == whole[off:off + n]
        else:
            with pytest.raises(DataLossError):
                src.read_range(off, n)


class TestSinks:
    def test_null_sink_counts(self):
        sink = NullSink()
        sink.write_chunk(b"abc")
        sink.write_chunk(b"defg")
        assert sink.bytes_written == 7

    def test_buffer_sink(self):
        sink = BufferSink()
        sink.write_chunk(b"ab")
        sink.write_chunk(b"cd")
        assert sink.getvalue() == b"abcd"

    def test_hashing_sink(self):
        import hashlib
        sink = HashingSink()
        sink.write_chunk(b"hello")
        assert sink.hexdigest() == hashlib.sha256(b"hello").hexdigest()

    def test_file_sink_writes(self, tmp_path):
        p = tmp_path / "out.bin"
        with FileSink(p) as sink:
            sink.write_chunk(b"payload")
        assert p.read_bytes() == b"payload"

    def test_file_sink_abort_removes_partial(self, tmp_path):
        p = tmp_path / "out.bin"
        sink = FileSink(p)
        sink.write_chunk(b"partial")
        sink.abort()
        assert not p.exists()

    def test_open_sink_null(self):
        assert isinstance(open_sink(None, None), NullSink)
        assert isinstance(open_sink("/dev/null", None), NullSink)

    def test_open_sink_file(self, tmp_path):
        sink = open_sink(str(tmp_path / "f"), None)
        assert isinstance(sink, FileSink)
        sink.finish()

    def test_open_sink_both_rejected(self):
        with pytest.raises(ValueError):
            open_sink("path", "command")

    def test_command_sink(self, tmp_path):
        from repro.core import CommandSink
        out = tmp_path / "copy.bin"
        with CommandSink(f"cat > {out}") as sink:
            sink.write_chunk(b"via-pipe")
        assert out.read_bytes() == b"via-pipe"

    def test_command_sink_failure_raises(self):
        from repro.core import CommandSink, SinkError
        sink = CommandSink("exit 3")
        with pytest.raises(SinkError):
            sink.finish()

    def test_command_sink_broken_pipe_maps_to_sink_error(self):
        import time
        from repro.core import CommandSink, SinkError
        sink = CommandSink("exit 7")
        sink._proc.wait()  # ensure the command is gone before writing
        with pytest.raises(SinkError) as exc_info:
            # The pipe buffer can absorb small writes after child death;
            # keep writing until the kernel reports the broken pipe.
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                sink.write_chunk(b"x" * 65536)
        assert "exit 7" in str(exc_info.value)
        assert "stopped accepting data" in str(exc_info.value)
        sink.abort()

    def test_file_sink_preallocate(self, tmp_path):
        p = tmp_path / "pre.bin"
        sink = FileSink(p, expected_size=4096)
        sink.write_chunk(b"abc")
        sink.finish()
        # The reservation beyond what was written must not survive.
        assert p.read_bytes() == b"abc"

    def test_file_sink_preallocate_unsupported_is_silent(self, tmp_path, monkeypatch):
        def refuse(fd, offset, length):
            raise OSError(errno.EOPNOTSUPP, "not supported")
        monkeypatch.setattr(os, "posix_fallocate", refuse, raising=False)
        p = tmp_path / "nofalloc.bin"
        with FileSink(p, expected_size=1 << 20) as sink:
            sink.write_chunk(b"data")
        assert p.read_bytes() == b"data"

    def test_file_sink_preallocate_enospc_propagates(self, tmp_path, monkeypatch):
        def full(fd, offset, length):
            raise OSError(errno.ENOSPC, "No space left on device")
        monkeypatch.setattr(os, "posix_fallocate", full, raising=False)
        with pytest.raises(OSError) as exc_info:
            FileSink(tmp_path / "full.bin", expected_size=1 << 20)
        assert exc_info.value.errno == errno.ENOSPC

    def test_throttled_sink_models_service_time(self):
        from repro.core import ThrottledSink
        sleeps = []
        inner = BufferSink()
        sink = ThrottledSink(inner, 1000.0, sleep=sleeps.append)
        # A synchronous device: every write costs its service time
        # in-call, so 300 kB at 1000 B/s blocks for 300 s total.
        for _ in range(300):
            sink.write_chunk(b"z" * 1000)
        sink.finish()
        assert inner.getvalue() == b"z" * 300000
        assert sum(sleeps) == pytest.approx(300.0)

    def test_throttled_sink_batches_sub_ms_service_debt(self):
        from repro.core import ThrottledSink
        sleeps = []
        sink = ThrottledSink(BufferSink(), 1_000_000.0, sleep=sleeps.append)
        # 100 B at 1 MB/s is 0.1 ms of service time — far below the 1 ms
        # sleep floor, so the debt must accumulate instead of micro-sleeping.
        for _ in range(30):
            sink.write_chunk(b"z" * 100)
        assert len(sleeps) == 3  # one ~1 ms sleep per 10 writes
        assert all(s >= 0.001 for s in sleeps)
        assert sum(sleeps) == pytest.approx(0.003)
