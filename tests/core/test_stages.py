"""Tests for the staged I/O layer (`repro.core.stages`).

Covers the §III-A overlap machinery in isolation: writeback ordering,
pooled-buffer pinning vs. the copy budget, error surfacing, drain and
abort semantics, and read-ahead content parity + hit/miss accounting.
"""

import threading
import time

import pytest

from repro.core import (
    BufferSink,
    BytesSource,
    FileSource,
    PatternSource,
    PerfStats,
    ReadAheadSource,
    SinkError,
    SinkWriter,
    TraceCollector,
)
from repro.core.sinks import Sink
from repro.core.tracing import STALL


class SlowSink(BufferSink):
    """Buffer sink with a per-write delay and an optional block gate."""

    def __init__(self, delay=0.0, gate=None):
        super().__init__()
        self.delay = delay
        self.gate = gate

    def write_chunk(self, data):
        if self.gate is not None:
            self.gate.wait(5.0)
        if self.delay:
            time.sleep(self.delay)
        super().write_chunk(data)


class FailingSink(Sink):
    """Fails on the Nth write with the given exception."""

    def __init__(self, fail_at=0, exc=None):
        self.fail_at = fail_at
        self.exc = exc or OSError(28, "No space left on device")
        self.writes = 0
        self.aborted = False

    def write_chunk(self, data):
        if self.writes >= self.fail_at:
            raise self.exc
        self.writes += 1

    def abort(self):
        self.aborted = True


class TestSinkWriter:
    def test_order_and_content_preserved(self):
        inner = BufferSink()
        writer = SinkWriter(inner, depth=4)
        chunks = [bytes([i % 256]) * 257 for i in range(100)]
        for c in chunks:
            writer.write_chunk(c)
        writer.finish()
        assert inner.getvalue() == b"".join(chunks)
        assert writer.bytes_written == sum(len(c) for c in chunks)

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            SinkWriter(BufferSink(), depth=0)

    def test_error_surfaces_on_next_write(self):
        writer = SinkWriter(FailingSink(), depth=2)
        writer.write_chunk(b"doomed")
        with pytest.raises(OSError) as exc_info:
            # The failure is asynchronous; keep feeding until it lands.
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                writer.write_chunk(b"more")
                time.sleep(0.001)
        assert exc_info.value.errno == 28
        # The error is sticky: finish must keep failing too.
        with pytest.raises(OSError):
            writer.finish()
        writer.abort()

    def test_error_surfaces_on_finish(self):
        writer = SinkWriter(FailingSink(fail_at=1), depth=8)
        writer.write_chunk(b"ok")
        writer.write_chunk(b"fails")
        with pytest.raises(OSError):
            writer.finish()
        writer.abort()

    def test_finish_drains_everything(self):
        inner = SlowSink(delay=0.002)
        writer = SinkWriter(inner, depth=2)
        for _ in range(20):
            writer.write_chunk(b"y" * 100)
        writer.finish()
        assert inner.bytes_written == 2000

    def test_abort_discards_queue_and_never_deadlocks(self):
        gate = threading.Event()  # never set: the worker blocks forever
        inner = SlowSink(gate=gate)
        writer = SinkWriter(inner, depth=2)
        writer.write_chunk(b"a")
        writer.write_chunk(b"b")
        writer.write_chunk(b"c")  # queue now full, worker stuck on 'a'
        t0 = time.monotonic()
        done = threading.Event()

        def do_abort():
            writer.abort()
            done.set()

        threading.Thread(target=do_abort, daemon=True).start()
        gate.set()  # release the worker mid-abort, as inner.abort() would
        assert done.wait(5.0), "abort() deadlocked with a full queue"
        assert time.monotonic() - t0 < 5.0

    def test_abort_with_concurrent_blocked_producer(self):
        gate = threading.Event()
        inner = SlowSink(gate=gate)
        writer = SinkWriter(inner, depth=1)
        writer.write_chunk(b"a")
        blocked = threading.Event()

        def producer():
            blocked.set()
            writer.write_chunk(b"b")  # blocks: queue full
            writer.write_chunk(b"c")  # post-abort writes are dropped

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        blocked.wait(5.0)
        time.sleep(0.05)  # let the producer reach the full-queue wait
        gate.set()
        writer.abort()
        t.join(5.0)
        assert not t.is_alive(), "producer stayed blocked across abort()"

    def test_pinning_defers_pool_reuse(self):
        # A queued chunk pins its backing buffer: while it waits in the
        # writer's queue, the bytearray must report live exports — which
        # is exactly what BufferPool's reuse probe checks (a bytearray
        # with exports refuses to resize).
        backing = bytearray(b"p" * 64)
        view = memoryview(backing)[:16]
        gate = threading.Event()
        inner = SlowSink(gate=gate)
        writer = SinkWriter(inner, depth=4)
        writer.write_chunk(view)
        view.release()  # producer done; only the writer's export pins now
        with pytest.raises(BufferError):
            backing.append(0)
        gate.set()
        writer.finish()
        backing.append(0)  # every export released: reusable again

    def test_copy_past_pin_budget(self):
        stats = PerfStats()
        gate = threading.Event()
        inner = SlowSink(gate=gate)
        writer = SinkWriter(inner, depth=8, pin_budget=100, stats=stats)
        writer.write_chunk(b"a" * 80)   # pinned (80 <= 100)
        writer.write_chunk(b"b" * 80)   # over budget: copied
        assert stats.payload_copy_events == 1
        assert stats.payload_bytes_copied == 80
        assert writer.pinned_bytes == 80
        gate.set()
        writer.finish()
        assert writer.pinned_bytes == 0

    def test_stall_accounting_and_trace(self):
        stats = PerfStats()
        tracer = TraceCollector()
        gate = threading.Event()
        inner = SlowSink(gate=gate)
        writer = SinkWriter(inner, depth=1, stats=stats, tracer=tracer,
                            owner="n2")
        writer.write_chunk(b"a")  # worker pops this and blocks on the gate
        time.sleep(0.05)
        writer.write_chunk(b"b")  # fills the queue (depth 1)

        def open_gate():
            time.sleep(0.05)
            gate.set()

        threading.Thread(target=open_gate, daemon=True).start()
        writer.write_chunk(b"c")  # must block until the gate opens
        writer.finish()
        assert stats.sink_stall_s > 0
        stalls = tracer.of_type(STALL)
        assert stalls and stalls[0].detail == "sink-writeback"
        assert stalls[0].node == "n2"

    def test_queue_high_water_mark(self):
        stats = PerfStats()
        gate = threading.Event()
        inner = SlowSink(gate=gate)
        writer = SinkWriter(inner, depth=8, stats=stats)
        for _ in range(5):
            writer.write_chunk(b"x")
        gate.set()
        writer.finish()
        assert stats.writeback_queue_hwm >= 4  # worker may pop one early

    def test_preallocate_forwards(self, tmp_path):
        from repro.core import FileSink
        inner = FileSink(tmp_path / "pre.bin")
        writer = SinkWriter(inner, depth=2)
        writer.preallocate(1024)
        writer.write_chunk(b"z")
        writer.finish()
        assert (tmp_path / "pre.bin").read_bytes() == b"z"


class TestReadAheadSource:
    def test_content_parity(self):
        data = PatternSource(100_000, seed=4).expected_bytes(0, 100_000)
        src = ReadAheadSource(BytesSource(data), depth=3)
        out = b""
        while True:
            piece = src.read_chunk(4096)
            if not piece:
                break
            out += piece
        assert out == data
        src.close()

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            ReadAheadSource(BytesSource(b""), depth=0)

    def test_shrinking_chunk_size_served_from_pending(self):
        src = ReadAheadSource(BytesSource(b"abcdefghij"), depth=2)
        assert src.read_chunk(4) == b"abcd"
        # Smaller request: the oversized prefetched block is split.
        assert src.read_chunk(2) == b"ef"
        assert src.read_chunk(2) == b"gh"
        assert src.read_chunk(10) == b"ij"
        assert src.read_chunk(10) == b""
        src.close()

    def test_hit_miss_accounting(self):
        stats = PerfStats()
        src = ReadAheadSource(BytesSource(b"x" * 40), depth=2, stats=stats)
        while src.read_chunk(8):
            time.sleep(0.01)  # give the prefetcher time to refill
        assert stats.readahead_hits + stats.readahead_misses == 6
        assert stats.readahead_hits >= 1
        src.close()

    def test_delegates_capabilities(self, tmp_path):
        p = tmp_path / "src.bin"
        p.write_bytes(b"0123456789" * 100)
        inner = FileSource(p)
        src = ReadAheadSource(inner, depth=2)
        assert src.kind is inner.kind
        assert src.size == 1000
        assert src.fileno() == inner.fileno()
        # PGET range reads bypass the prefetch queue entirely.
        assert src.read_range(10, 5) == b"01234"
        src.close()

    def test_stop_then_passthrough(self):
        src = ReadAheadSource(BytesSource(b"a" * 100), depth=2)
        first = src.read_chunk(10)
        assert first == b"a" * 10
        src.stop()
        # After stop, remaining bytes still arrive (drained + passthrough).
        rest = b""
        while True:
            piece = src.read_chunk(10)
            if not piece:
                break
            rest += piece
        assert first + rest == b"a" * 100

    def test_error_propagates(self):
        class BoomSource(BytesSource):
            def read_chunk(self, size):
                raise OSError(5, "Input/output error")

        src = ReadAheadSource(BoomSource(b"zz"), depth=2)
        with pytest.raises(OSError):
            src.read_chunk(10)

    def test_blocking_io_inherited(self):
        assert ReadAheadSource(BytesSource(b"")).blocking_io is False
        assert ReadAheadSource(
            PatternSource(10)).blocking_io is False
