"""The stripe data path (`repro.core.stripes`).

Split and merge are inverses: chunk ``i`` of the stream goes to stripe
``i % k`` (as that stripe's chunk ``i // k``), and the sink-side merger
reassembles the global order.  Under test:

* :func:`stripe_extent` — per-stripe byte counts, including the partial
  tail chunk, summing to the stream size;
* :class:`StripeSource` — the seekable per-stripe view, byte-for-byte
  against a hand-computed interleave;
* :class:`StripeMergeSink` — in-order reassembly regardless of stripe
  arrival order, bounded buffering accounting, desync/abort handling.
"""

import hashlib
import io
import random

import pytest

from repro.core.errors import DataLossError, SinkError
from repro.core.perfstats import get_stats, reset_stats
from repro.core.sinks import BufferSink
from repro.core.sources import FileSource, StreamSource
from repro.core.stripes import StripeMergeSink, StripeSource, stripe_extent


def interleave_split(data: bytes, k: int, c: int):
    """Reference split: chunk i -> stripe i % k."""
    chunks = [data[i:i + c] for i in range(0, len(data), c)] or [b""]
    out = [b"" for _ in range(k)]
    for i, chunk in enumerate(chunks):
        out[i % k] += chunk
    return out


class TestStripeExtent:
    @pytest.mark.parametrize("total", [0, 1, 7, 8, 100, 4096 * 13 + 5])
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 7])
    def test_extents_partition_the_stream(self, total, k):
        c = 8
        sizes = [stripe_extent(total, j, k, c) for j in range(k)]
        assert sum(sizes) == total
        ref = interleave_split(b"x" * total, k, c)
        assert sizes == [len(r) for r in ref]


class TestStripeSource:
    def test_view_matches_reference_interleave(self, tmp_path):
        data = bytes(random.Random(7).randbytes(4096 * 13 + 5))
        path = tmp_path / "stream.bin"
        path.write_bytes(data)
        c, k = 4096, 3
        ref = interleave_split(data, k, c)
        src = FileSource(path)
        for j in range(k):
            view = StripeSource(src, j, k, c)
            assert view.size == len(ref[j])
            got = b""
            while True:
                piece = view.read_chunk(1000)  # non-chunk-aligned reads
                if not piece:
                    break
                got += bytes(piece)
            assert got == ref[j]
            view.close()
        src.close()

    def test_read_range_random_access(self, tmp_path):
        data = bytes(range(256)) * 64
        path = tmp_path / "stream.bin"
        path.write_bytes(data)
        ref = interleave_split(data, 2, 100)[1]
        src = FileSource(path)
        view = StripeSource(src, 1, 2, 100)
        for offset, size in [(0, 37), (95, 110), (5000, 250),
                             (len(ref) - 10, 10)]:
            assert bytes(view.read_range(offset, size)) == ref[offset:offset + size]
        view.close()
        src.close()

    def test_requires_random_access(self):
        with pytest.raises(DataLossError, match="seekable"):
            StripeSource(StreamSource(io.BytesIO(b"ab")), 0, 2, 1)


class TestStripeMergeSink:
    def _merge(self, data: bytes, k: int, c: int, order=None) -> bytes:
        out = BufferSink()
        merger = StripeMergeSink(out, k, c)
        parts = interleave_split(data, k, c)
        ports = [merger.port(j) for j in range(k)]
        # Feed stripes in the given (possibly adversarial) order, in
        # odd-sized pieces so chunk boundaries are crossed freely.
        sequence = order or list(range(k))
        for j in sequence:
            buf = parts[j]
            pos = 0
            while pos < len(buf):
                take = min(c // 3 + 1, len(buf) - pos)
                ports[j].write_chunk(buf[pos:pos + take])
                pos += take
            ports[j].finish()
        return out.getvalue()

    @pytest.mark.parametrize("total", [0, 1, 100, 4096 * 13 + 5])
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_roundtrip(self, total, k):
        data = bytes(random.Random(total + k).randbytes(total))
        assert self._merge(data, k, 4096) == data

    def test_reverse_arrival_order(self):
        data = bytes(random.Random(3).randbytes(64 * 10 + 17))
        assert self._merge(data, 4, 64, order=[3, 2, 1, 0]) == data

    def test_buffering_high_water_mark_recorded(self):
        reset_stats()
        data = b"z" * (64 * 8)
        # Worst case order: stripe 1 fully buffered before stripe 0.
        assert self._merge(data, 2, 64, order=[1, 0]) == data
        assert get_stats().stripe_merge_hwm >= 64 * 4
        reset_stats()

    def test_desync_detected(self):
        out = BufferSink()
        merger = StripeMergeSink(out, 2, 4)
        p0, p1 = merger.port(0), merger.port(1)
        # Stripe 0 claims EOS while stripe 1 still holds full chunks the
        # global order needed first -> the merge cannot be completed.
        p1.write_chunk(b"AAAA" * 3)
        with pytest.raises(SinkError, match="desync"):
            p0.finish()

    def test_abort_propagates_once(self):
        class CountingAbort(BufferSink):
            aborts = 0

            def abort(self):
                type(self).aborts += 1

        out = CountingAbort()
        merger = StripeMergeSink(out, 2, 4)
        merger.port(0).abort()
        merger.port(1).abort()
        assert CountingAbort.aborts == 1

    def test_digest_parity_with_plain_stream(self):
        data = bytes(random.Random(11).randbytes(1 << 16))
        merged = self._merge(data, 4, 1024, order=[2, 0, 3, 1])
        assert hashlib.sha256(merged).hexdigest() == \
            hashlib.sha256(data).hexdigest()
