"""Unit tests for the structured event bus (repro.core.tracing)."""

import json

from repro.core import tracing
from repro.core.tracing import (
    NULL_TRACER,
    NullRecorder,
    TraceCollector,
    TraceEvent,
    classify_detector,
)


class TestVocabulary:
    def test_event_types_cover_the_protocol(self):
        assert tracing.EVENT_TYPES == {
            "connect", "chunk", "stall", "ping", "failover",
            "pget", "forget", "quit", "report", "done",
            "cache-hit", "session", "election",
        }

    def test_election_constant_is_its_wire_string(self):
        assert tracing.ELECTION == "election"

    def test_constants_are_their_wire_strings(self):
        assert tracing.FAILOVER == "failover"
        assert tracing.DONE == "done"


class TestClassifyDetector:
    def test_ping_unanswered(self):
        reason = "n3: awaiting PASSED: silent, ping unanswered"
        assert classify_detector(reason) == tracing.DETECTOR_PING

    def test_connect_failed(self):
        assert classify_detector("connect-failed: refused") == \
            tracing.DETECTOR_CONNECT
        assert classify_detector("no-handshake") == tracing.DETECTOR_CONNECT

    def test_syscall_error_is_the_fallback(self):
        assert classify_detector("peer closed connection") == \
            tracing.DETECTOR_ERROR
        assert classify_detector("send on dead channel") == \
            tracing.DETECTOR_ERROR

    def test_proc_exit_is_its_own_detector(self):
        # The process backend's waitpid detections must stay
        # distinguishable from timeout+ping and connect failures.
        assert classify_detector("proc-exit: signal SIGKILL") == \
            tracing.DETECTOR_PROC_EXIT
        assert classify_detector("proc-exit: code 3") == \
            tracing.DETECTOR_PROC_EXIT
        assert tracing.DETECTOR_PROC_EXIT not in (
            tracing.DETECTOR_ERROR, tracing.DETECTOR_PING,
            tracing.DETECTOR_CONNECT)


class TestNullRecorder:
    def test_disabled_and_silent(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullRecorder)
        # Accepts anything, keeps nothing, raises nothing.
        NULL_TRACER.emit("chunk", "n1", offset=0, detail="x")


class TestTraceCollector:
    def test_emit_orders_and_stamps(self):
        tc = TraceCollector(clock=lambda: 5.0, zero=0.0)
        tc.emit(tracing.CONNECT, "n2", peer="n1", detail="upstream")
        tc.emit(tracing.CHUNK, "n2", offset=4096, t=7.25)
        events = tc.events()
        assert [e.seq for e in events] == [0, 1]
        assert events[0].t == 5.0          # clock - zero
        assert events[1].t == 7.25         # explicit stamp wins
        assert events[1].offset == 4096

    def test_ring_capacity_drops_oldest(self):
        tc = TraceCollector(capacity=4, clock=lambda: 0.0, zero=0.0)
        for i in range(10):
            tc.emit(tracing.CHUNK, "n1", offset=i)
        assert len(tc) == 4
        assert [e.offset for e in tc] == [6, 7, 8, 9]
        # seq keeps counting even after the ring wraps.
        assert [e.seq for e in tc] == [6, 7, 8, 9]

    def test_timeline_and_of_type(self):
        tc = TraceCollector(clock=lambda: 0.0, zero=0.0)
        tc.emit(tracing.CONNECT, "n2")
        tc.emit(tracing.CONNECT, "n3")
        tc.emit(tracing.DONE, "n3")
        assert [e.type for e in tc.timeline("n3")] == ["connect", "done"]
        assert [e.node for e in tc.of_type(tracing.DONE)] == ["n3"]

    def test_milestones_default_projection(self):
        tc = TraceCollector(clock=lambda: 0.0, zero=0.0)
        tc.emit(tracing.CHUNK, "n2", offset=0)        # not a milestone
        tc.emit(tracing.FAILOVER, "n2", peer="n3")
        tc.emit(tracing.FORGET, "n4")
        tc.emit(tracing.DONE, "n4")
        tc.emit(tracing.DONE, "n2")
        assert tc.milestones() == [
            ("failover", "n2"), ("forget", "n4"),
            ("done", "n4"), ("done", "n2"),
        ]

    def test_jsonl_round_trip(self):
        tc = TraceCollector(clock=lambda: 1.5, zero=0.0)
        tc.emit(tracing.FAILOVER, "n2", peer="n3", offset=100,
                detail="peer closed connection", detector="error")
        tc.emit(tracing.DONE, "n2", offset=200)
        text = tc.to_jsonl()
        assert text.endswith("\n")
        lines = text.splitlines()
        assert len(lines) == 2
        # Every line is a self-contained JSON object with no null values.
        for line in lines:
            d = json.loads(line)
            assert None not in d.values()
        back = TraceCollector.from_jsonl(text)
        assert back == tc.events()
        assert back[0].detector == "error"
        assert back[1].offset == 200

    def test_jsonl_writes_to_path(self, tmp_path):
        tc = TraceCollector(clock=lambda: 0.0, zero=0.0)
        tc.emit(tracing.QUIT, "n4", detail="user interrupt")
        out = tmp_path / "trace.jsonl"
        tc.to_jsonl(str(out))
        assert TraceCollector.from_jsonl(out.read_text())[0].type == "quit"

    def test_failure_chronology_mentions_the_drama(self):
        tc = TraceCollector(clock=lambda: 0.0, zero=0.0)
        tc.emit(tracing.CHUNK, "n2", offset=0)  # boring, excluded
        tc.emit(tracing.PING, "n2", peer="n3", detail="unanswered", t=1.0)
        tc.emit(tracing.FAILOVER, "n2", peer="n3", offset=512, t=1.1,
                detail="silent, ping unanswered", detector="ping")
        text = tc.failure_chronology()
        assert "FAILOVER" in text and "PING" in text
        assert "CHUNK" not in text
        assert "[ping]" in text and "-> n3" in text and "@512" in text

    def test_failure_chronology_empty(self):
        tc = TraceCollector(clock=lambda: 0.0, zero=0.0)
        tc.emit(tracing.CHUNK, "n2", offset=0)
        assert "no failure activity" in tc.failure_chronology()

    def test_summary_census(self):
        tc = TraceCollector(clock=lambda: 0.0, zero=0.0)
        tc.emit(tracing.CHUNK, "n2")
        tc.emit(tracing.CHUNK, "n2")
        tc.emit(tracing.DONE, "n2")
        assert "3 events" in tc.summary()
        assert "chunk=2" in tc.summary()


class TestTraceEvent:
    def test_to_dict_drops_nones(self):
        e = TraceEvent(seq=0, t=0.5, type="done", node="n2")
        assert e.to_dict() == {"seq": 0, "t": 0.5, "type": "done",
                               "node": "n2"}

    def test_round_trip_preserves_fields(self):
        e = TraceEvent(seq=3, t=1.25, type="failover", node="n2",
                       offset=42, peer="n3", detail="why", detector="error")
        assert TraceEvent.from_dict(e.to_dict()) == e
