"""Tests for repro.core.units."""

import pytest

from repro.core import units


class TestParseSize:
    def test_plain_int_passthrough(self):
        assert units.parse_size(42) == 42

    def test_bare_number(self):
        assert units.parse_size("123") == 123

    def test_decimal_units(self):
        assert units.parse_size("1KB") == 1_000
        assert units.parse_size("2MB") == 2_000_000
        assert units.parse_size("3GB") == 3_000_000_000

    def test_binary_units(self):
        assert units.parse_size("1KiB") == 1024
        assert units.parse_size("2MiB") == 2 * (1 << 20)
        assert units.parse_size("1GiB") == 1 << 30

    def test_short_suffixes(self):
        assert units.parse_size("50M") == 50_000_000
        assert units.parse_size("2G") == 2_000_000_000

    def test_case_insensitive(self):
        assert units.parse_size("1kb") == 1_000
        assert units.parse_size("1kib") == 1024

    def test_fractional(self):
        assert units.parse_size("1.5KB") == 1500

    def test_whitespace_tolerated(self):
        assert units.parse_size(" 2 MB ") == 2_000_000

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            units.parse_size("lots")
        with pytest.raises(ValueError):
            units.parse_size("12QB")


class TestRates:
    def test_gigabit_is_125_mbs(self):
        assert units.GIGABIT == pytest.approx(125e6)

    def test_mbps(self):
        assert units.mbps(125e6) == pytest.approx(125.0)

    def test_gbit(self):
        assert units.gbit(125e6) == pytest.approx(1.0)

    def test_fmt_rate(self):
        assert units.fmt_rate(117_300_000) == "117.3 MB/s"

    def test_fmt_size(self):
        assert units.fmt_size(2_000_000_000) == "2.0 GB"
        assert units.fmt_size(50_000_000) == "50.0 MB"
        assert units.fmt_size(1_500) == "1.5 KB"
        assert units.fmt_size(12) == "12 B"
