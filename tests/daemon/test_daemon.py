"""Integration tests: the persistent-fleet daemon backend.

Everything here runs one real ``kascade agent --fleet`` process per
node.  The fleet fixture is module-scoped on purpose: amortising the
windowed launch over many sessions *is the feature under test*, so the
tests exercise the server exactly the way a long-lived deployment would
— many sessions, one fleet.  Tests that kill fleet members (chaos,
shutdown accounting) build their own throwaway fleets.
"""

import hashlib
import os
import threading

import pytest

from repro import run_broadcast
from repro.core import KascadeConfig, KascadeError
from repro.core.sources import FileSource
from repro.core.sinks import HashingSink
from repro.core.sources import BytesSource
from repro.daemon import DaemonServer, LateJoin
from repro.deploy.chaos import ChaosPlan

FAST = KascadeConfig(
    chunk_size=64 * 1024,
    buffer_chunks=8,
    io_timeout=0.5,
    ping_timeout=0.4,
    connect_timeout=1.0,
    report_timeout=6.0,
    cache_bytes=64 << 20,
)

FLEET_OPTS = dict(config=FAST, startup_timeout=20.0,
                  progress_every=64 * 1024)


def make_payload(seed: int, size: int = 1 << 20) -> bytes:
    return bytes((i * seed) % 256 for i in range(size))


def spool(tmp_path, name: str, payload: bytes) -> str:
    path = str(tmp_path / name)
    with open(path, "wb") as handle:
        handle.write(payload)
    return path


@pytest.fixture(scope="module")
def fleet():
    with DaemonServer(["n1", "n2", "n3", "n4"], **FLEET_OPTS) as server:
        yield server


class TestWarmFleet:
    def test_concurrent_sessions_digest_parity_with_local(self, fleet,
                                                          tmp_path):
        """Two overlapping sessions on one fleet, each byte-identical to
        the same payload broadcast on the thread backend."""
        payloads = {"a": make_payload(13), "b": make_payload(29)}
        paths = {k: spool(tmp_path, f"{k}.bin", v)
                 for k, v in payloads.items()}
        results = {}

        def run(key):
            results[key] = fleet.submit(FileSource(paths[key]),
                                        ["n2", "n3"], timeout=60.0)

        threads = [threading.Thread(target=run, args=(k,)) for k in paths]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=90.0)
        assert set(results) == {"a", "b"}

        for key, payload in payloads.items():
            local_sinks = {}

            def factory(name):
                local_sinks[name] = HashingSink()
                return local_sinks[name]

            local = run_broadcast(BytesSource(payload), ["n2", "n3"],
                                  config=FAST, sink_factory=factory,
                                  timeout=60.0)
            daemon = results[key]
            assert local.ok and daemon.ok
            expected = hashlib.sha256(payload).hexdigest()
            assert {s.hexdigest() for s in local_sinks.values()} == {expected}
            assert {daemon.outcomes[n].digest
                    for n in ("n2", "n3")} == {expected}
            assert daemon.backend == "daemon"
            # The fleet launch happened before either session existed.
            assert daemon.launch is None
        # Both sessions were genuinely concurrent on the one fleet.
        assert max(r.perfstats["sessions_active"]
                   for r in results.values()) >= 2

    def test_repeat_broadcast_served_from_cache(self, fleet, tmp_path):
        """A second submit of the same artifact never touches upstream:
        every receiver replays its cache, digest-identical to the cold
        run, with >= 90% of delivered bytes accounted to the cache."""
        payload = make_payload(41)
        path = spool(tmp_path, "repeat.bin", payload)
        cold = fleet.submit(FileSource(path), ["n2", "n3"], timeout=60.0)
        warm = fleet.submit(FileSource(path), ["n2", "n3"], timeout=60.0)
        assert cold.ok and warm.ok
        expected = hashlib.sha256(payload).hexdigest()
        for result in (cold, warm):
            assert {result.outcomes[n].digest
                    for n in ("n2", "n3")} == {expected}
        # Zero upstream bytes on the warm run: no receiver saw the wire.
        assert all(warm.outcomes[n].bytes_received == 0
                   for n in ("n2", "n3"))
        delivered = 2 * len(payload)
        assert warm.perfstats["bytes_from_cache"] >= 0.9 * delivered
        assert cold.perfstats.get("bytes_from_cache", 0) == 0
        # Launch amortisation: recorded, and shrinking as sessions land.
        assert 0 < warm.perfstats["launch_amortized_s"] \
            <= cold.perfstats["launch_amortized_s"]

    def test_late_joiner_converges_by_pulling(self, fleet, tmp_path):
        """A node registered mid-session pulls the missing prefix from
        cache-warm peers and ends with the full digest-verified copy,
        while the push chain completes undisturbed."""
        payload = make_payload(17, size=1 << 20)
        path = spool(tmp_path, "late.bin", payload)
        # Pace the push so the join triggers mid-stream.
        paced = FAST.with_(bandwidth_limit=4 * (1 << 20))
        with DaemonServer(["n1", "n2", "n3"], config=paced,
                          startup_timeout=20.0,
                          progress_every=64 * 1024) as server:
            result = server.submit(
                FileSource(path), ["n2"],
                late_join=[LateJoin("n3", after_bytes=256 * 1024)],
                trace=True, timeout=60.0)
        assert result.ok
        expected = hashlib.sha256(payload).hexdigest()
        assert result.outcomes["n2"].digest == expected  # push undisturbed
        assert result.outcomes["n3"].digest == expected  # pull converged
        assert result.outcomes["n3"].bytes_received == len(payload)
        assert result.trace is not None
        pgets = [e for e in result.trace.events()
                 if e.type == "pget" and e.node == "n3"]
        assert pgets, "the joiner must have pulled from a peer"
        sessions = [e for e in result.trace.events() if e.type == "session"]
        assert any("late join n3" in (e.detail or "") for e in sessions)


class TestChaos:
    def test_killing_the_joiner_mid_pull_fails_only_the_joiner(self,
                                                               tmp_path):
        """Chaos targets a session participant, not the fleet: the
        joiner dies mid-catch-up, the push chain still completes, and
        the planned death is excused in the ok accounting."""
        payload = make_payload(23, size=1 << 20)
        path = spool(tmp_path, "chaos.bin", payload)
        paced = FAST.with_(bandwidth_limit=4 * (1 << 20))
        with DaemonServer(["n1", "n2", "n3"], config=paced,
                          startup_timeout=20.0,
                          progress_every=64 * 1024) as server:
            result = server.submit(
                FileSource(path), ["n2"],
                late_join=[LateJoin("n3", after_bytes=128 * 1024)],
                chaos=[ChaosPlan("n3", after_bytes=256 * 1024)],
                timeout=60.0)
        expected = hashlib.sha256(payload).hexdigest()
        assert result.ok  # the death was planned, so it is excused
        assert result.outcomes["n2"].ok
        assert result.outcomes["n2"].digest == expected
        assert not result.outcomes["n3"].ok
        assert result.outcomes["n3"].crashed

    def test_chaos_target_outside_the_session_is_a_clear_error(self,
                                                               fleet,
                                                               tmp_path):
        """Naming a real fleet member that is not in this session's plan
        is its own error — distinct from naming an unknown node."""
        path = spool(tmp_path, "victim.bin", make_payload(7, size=4096))
        with pytest.raises(KascadeError,
                           match="fleet members outside this session"):
            fleet.submit(FileSource(path), ["n2"],
                         chaos=[ChaosPlan("n4", after_bytes=0)],
                         timeout=30.0)
        with pytest.raises(KascadeError, match="unknown nodes"):
            fleet.submit(FileSource(path), ["n2"],
                         chaos=[ChaosPlan("n9", after_bytes=0)],
                         timeout=30.0)


class TestLifecycle:
    def test_graceful_shutdown_exits_zero(self, tmp_path):
        """A clean serve/submit/shutdown drains agents with quit: every
        fleet process exits 0 — SIGKILL is the abort path, not the
        happy path."""
        path = spool(tmp_path, "clean.bin", make_payload(11, size=256 * 1024))
        server = DaemonServer(["n1", "n2"], **FLEET_OPTS)
        server.start()
        procs = dict(server._procs)
        result = server.submit(FileSource(path), ["n2"], timeout=60.0)
        assert result.ok
        server.shutdown()
        assert procs, "fleet launched no processes?"
        assert {name: proc.returncode for name, proc in procs.items()} == \
            {name: 0 for name in procs}

    def test_run_broadcast_daemon_backend(self, tmp_path):
        """The blessed facade reaches the daemon like any other backend
        (ephemeral fleet for one session)."""
        payload = make_payload(31, size=256 * 1024)
        path = spool(tmp_path, "facade.bin", payload)
        out = str(tmp_path / "out-{node}.bin")
        result = run_broadcast(
            FileSource(path), ["n2", "n3"],
            backend="daemon", config=FAST, timeout=60.0,
            startup_timeout=20.0, output_template=out,
        )
        assert result.ok and result.backend == "daemon"
        for node in ("n2", "n3"):
            with open(str(tmp_path / f"out-{node}.bin"), "rb") as handle:
                assert handle.read() == payload

    def test_submitting_into_a_warm_server(self, fleet, tmp_path):
        """run_broadcast(server=...) rides an existing fleet — the
        session-multiplexing form of the facade."""
        payload = make_payload(37, size=256 * 1024)
        path = spool(tmp_path, "warm.bin", payload)
        result = run_broadcast(FileSource(path), ["n2", "n4"],
                               backend="daemon", config=FAST,
                               timeout=60.0, server=fleet)
        assert result.ok
        expected = hashlib.sha256(payload).hexdigest()
        assert {result.outcomes[n].digest for n in ("n2", "n4")} == {expected}


class TestReplicatedControlPlane:
    def test_fleet_state_replicates_and_survives_minority_death(self,
                                                                tmp_path):
        """A fleet with a 3-replica quorum commits registrations, plans
        and per-session watermarks — and keeps serving sessions after a
        minority replica is SIGKILLed, because the data plane never
        depends on any single replica."""
        sizes = (512 * 1024, 768 * 1024)  # distinct artifacts: no cache hit
        paths = [spool(tmp_path, f"quorum{i}.bin", make_payload(13 + i, s))
                 for i, s in enumerate(sizes)]
        server = DaemonServer(["n1", "n2", "n3"], coordinator_replicas=3,
                              **FLEET_OPTS)
        with server:
            first = server.submit(FileSource(paths[0]), timeout=60.0)
            assert first.ok
            # Kill one replica outright: a minority, so nothing notices.
            server._replica_procs[0].kill()
            server._replica_procs[0].wait()
            second = server.submit(FileSource(paths[1]), timeout=60.0)
            assert second.ok

            state = server._quorum.read_state()
            # Every fleet member registered its data-plane address.
            assert sorted(state.registrations) == ["n1", "n2", "n3"]
            for reg in state.registrations.values():
                assert reg["port"] > 0 and reg["pid"] > 0
            # The active plan and both sessions' final watermarks made
            # it into the replicated log (<session>/<node> keys, since
            # one fleet multiplexes many sessions).
            assert state.plan is not None and state.plan["head"] == "n1"
            marks = dict(state.watermarks)
            by_session = {}
            for key, received in marks.items():
                sid, _node = key.split("/")
                by_session.setdefault(sid, set()).add(received)
            assert len(by_session) == 2
            # Each session's nodes all settled at that payload's size.
            assert sorted(v for s in by_session.values() for v in s) == \
                sorted(sizes)
        # Teardown reaped the surviving replicas too.
        for proc in server._replica_procs:
            assert proc.poll() is not None
