"""Unit tests for the real-signal chaos engine (injected kill_fn)."""

import signal

import pytest

from repro.core.errors import KascadeError
from repro.deploy.chaos import MODE_TO_SIGNAL, SIGNALS, ChaosEngine, ChaosPlan


class TestChaosPlan:
    def test_defaults(self):
        plan = ChaosPlan("n3")
        assert plan.after_bytes == 0
        assert plan.sig == "kill"

    def test_unknown_signal_rejected(self):
        with pytest.raises(KascadeError, match="unknown chaos signal"):
            ChaosPlan("n3", sig="term")

    def test_negative_threshold_rejected(self):
        with pytest.raises(KascadeError, match="after_bytes"):
            ChaosPlan("n3", after_bytes=-1)

    def test_signal_map_is_real(self):
        assert SIGNALS["kill"] == signal.SIGKILL
        assert SIGNALS["stop"] == signal.SIGSTOP

    def test_crash_modes_map_onto_signals(self):
        # "close" (process death) -> SIGKILL, "silent" (hang) -> SIGSTOP:
        # the thread runtime's crash vocabulary carries over 1:1.
        assert MODE_TO_SIGNAL == {"close": "kill", "silent": "stop"}
        assert set(MODE_TO_SIGNAL.values()) <= set(SIGNALS)


class TestChaosEngine:
    def test_fires_once_at_threshold(self):
        sent = []
        engine = ChaosEngine([ChaosPlan("n3", after_bytes=100, sig="kill")],
                             kill_fn=lambda pid, sig: sent.append((pid, sig)))
        assert engine.on_progress("n3", 50, pid=42) is None
        assert engine.on_progress("n3", 100, pid=42) == "kill"
        assert engine.on_progress("n3", 200, pid=42) is None  # once only
        assert sent == [(42, signal.SIGKILL)]
        assert "n3" in engine.fired

    def test_threshold_is_a_floor_not_exact(self):
        sent = []
        engine = ChaosEngine([ChaosPlan("n3", after_bytes=100, sig="stop")],
                             kill_fn=lambda pid, sig: sent.append(sig))
        assert engine.on_progress("n3", 5000, pid=1) == "stop"
        assert sent == [signal.SIGSTOP]

    def test_untargeted_nodes_untouched(self):
        sent = []
        engine = ChaosEngine([ChaosPlan("n3")],
                             kill_fn=lambda pid, sig: sent.append(sig))
        assert engine.on_progress("n2", 1 << 30, pid=1) is None
        assert sent == []

    def test_duplicate_plans_rejected(self):
        with pytest.raises(KascadeError, match="multiple chaos plans"):
            ChaosEngine([ChaosPlan("n3"), ChaosPlan("n3", after_bytes=5)])

    def test_dead_pid_still_counts_as_fired(self):
        def kill_dead(pid, sig):
            raise ProcessLookupError(pid)

        engine = ChaosEngine([ChaosPlan("n3")], kill_fn=kill_dead)
        # The node died on its own first; the plan must not crash the
        # coordinator and must still count for ok-accounting.
        assert engine.on_progress("n3", 10, pid=99999) == "kill"
        assert "n3" in engine.fired

    def test_targets_span_pending_and_fired(self):
        engine = ChaosEngine([ChaosPlan("n2"), ChaosPlan("n3")],
                             kill_fn=lambda pid, sig: None)
        assert engine.targets() == {"n2", "n3"}
        engine.on_progress("n2", 0, pid=1)
        assert engine.targets() == {"n2", "n3"}


class TestExternalTargets:
    """Head and control-replica plans: targets that never self-report."""

    def test_external_fires_on_anyones_progress(self):
        sent = []
        engine = ChaosEngine([ChaosPlan("n1", after_bytes=100, sig="kill")],
                             kill_fn=lambda pid, sig: sent.append((pid, sig)))
        engine.register_external("n1", 4242)
        # The head never appears in the feed; a receiver's progress
        # crossing the threshold is what pulls the trigger.
        assert engine.on_progress("n3", 50, pid=7) is None
        engine.on_progress("n3", 150, pid=7)
        assert sent == [(4242, signal.SIGKILL)]
        assert "n1" in engine.fired
        # Once only, no matter how much more progress flows.
        engine.on_progress("n2", 1 << 30, pid=8)
        assert len(sent) == 1

    def test_reporter_and_external_can_fire_on_one_report(self):
        sent = []
        engine = ChaosEngine(
            [ChaosPlan("replica:0", after_bytes=10, sig="kill"),
             ChaosPlan("n2", after_bytes=10, sig="stop")],
            kill_fn=lambda pid, sig: sent.append((pid, sig)))
        engine.register_external("replica:0", 9000)
        assert engine.on_progress("n2", 64, pid=70) == "stop"
        assert sorted(sent) == [(70, signal.SIGSTOP), (9000, signal.SIGKILL)]

    def test_unregistered_external_never_fires(self):
        sent = []
        engine = ChaosEngine([ChaosPlan("replica:1", after_bytes=0)],
                             kill_fn=lambda pid, sig: sent.append(sig))
        engine.on_progress("n2", 1 << 20, pid=1)
        assert sent == []
        assert "replica:1" not in engine.fired


class TestValidate:
    def test_targets_inside_the_plan_pass(self):
        engine = ChaosEngine([ChaosPlan("n2")], kill_fn=lambda p, s: None)
        engine.validate(["n2", "n3"])  # no raise

    def test_unknown_node_is_the_generic_error(self):
        engine = ChaosEngine([ChaosPlan("n9")], kill_fn=lambda p, s: None)
        with pytest.raises(KascadeError, match="unknown nodes.*n9"):
            engine.validate(["n2", "n3"])

    def test_fleet_member_outside_the_session_is_its_own_error(self):
        """The daemon's case: 'n4' exists in the fleet but not in this
        session — the error must say so, not claim the node is unknown."""
        engine = ChaosEngine([ChaosPlan("n4")], kill_fn=lambda p, s: None)
        with pytest.raises(KascadeError,
                           match="fleet members outside this session.*n4"):
            engine.validate(["n2", "n3"], known=["n1", "n2", "n3", "n4"],
                            what="session")
        # Same engine, target truly unknown even to the fleet:
        stranger = ChaosEngine([ChaosPlan("n9")], kill_fn=lambda p, s: None)
        with pytest.raises(KascadeError, match="unknown nodes"):
            stranger.validate(["n2"], known=["n1", "n2"], what="session")

    def test_allow_widens_for_opted_in_backends(self):
        """The head and replica pseudo-nodes are killable only when the
        backend passes them in ``allow`` — head failover and the
        replicated control plane are opt-ins, not defaults."""
        engine = ChaosEngine([ChaosPlan("n1"), ChaosPlan("replica:0")],
                             kill_fn=lambda p, s: None)
        with pytest.raises(KascadeError, match="unknown nodes"):
            engine.validate(["n2", "n3"])
        engine.validate(["n2", "n3"], allow=["n1", "replica:0"])  # no raise
        # A partial allow still flags the rest.
        with pytest.raises(KascadeError, match="replica:0"):
            engine.validate(["n2", "n3"], allow=["n1"])
