"""Head failover under the replicated control plane.

The acceptance scenario for the quorum coordinator: SIGKILL the *head*
mid-transfer with three control replicas standing, and the broadcast
still completes — the quorum elects the most-complete survivor from the
replicated watermarks, re-roots the chain onto it, and the survivors
resume from their ring buffers.  The local backend mirrors the same
election in-process so the merged-trace shape is testable without
sockets, and a minority replica death must never interrupt anything.
"""

import hashlib

import pytest

from repro import run_broadcast
from repro.core import KascadeConfig, KascadeError
from repro.core.sinks import BufferSink
from repro.core.sources import PatternSource
from repro.core.tracing import DETECTOR_PROC_EXIT, ELECTION, FAILOVER

FAST = KascadeConfig(
    chunk_size=64 * 1024,
    buffer_chunks=8,
    io_timeout=0.5,
    ping_timeout=0.4,
    connect_timeout=1.0,
    report_timeout=6.0,
)

PROCS = dict(backend="procs", config=FAST, timeout=90.0,
             progress_every=128 * 1024, startup_timeout=20.0)

#: Shared topology for the failover runs: head n1 + five receivers,
#: head killed a quarter of the way through an 8 MiB transfer.
RECEIVERS = [f"n{i}" for i in range(2, 7)]
SOURCE_BYTES = 8 * 1024 * 1024
HEAD_CRASH = ("n1", 2 * 1024 * 1024, "close")


def sha256_of(source: PatternSource) -> str:
    return hashlib.sha256(source.expected_bytes(0, source.size)).hexdigest()


class TestProcsHeadFailover:
    def test_sigkill_head_mid_transfer(self, tmp_path):
        """The tentpole acceptance test: a real SIGKILL on the head with
        a 3-replica quorum standing → the transfer completes on a
        re-rooted chain, survivors are byte-exact, and the merged trace
        carries exactly one ELECTION plus a FAILOVER for the old head."""
        source = PatternSource(SOURCE_BYTES)
        result = run_broadcast(
            source, RECEIVERS, trace=True, crashes=[HEAD_CRASH],
            coordinator_replicas=3, allow_head_chaos=True,
            output_template=str(tmp_path / "{node}.out"), **PROCS)
        assert result.ok, result.outcomes

        # Exactly one ELECTION, decreed by the coordinator, promoting a
        # survivor at a positive replicated watermark.
        elections = result.trace.of_type(ELECTION)
        assert len(elections) == 1
        elect = elections[0]
        assert elect.node == "coordinator"
        promoted = elect.peer
        assert promoted in RECEIVERS
        assert elect.offset > 0

        # The run's effective plan is re-rooted onto the promoted head.
        assert result.plan.base.head == promoted
        assert promoted not in result.plan.base.chain[1:]

        # The coordinator detected the real process death of the head.
        head_failovers = [e for e in result.trace.of_type(FAILOVER)
                          if e.node == "coordinator" and e.peer == "n1"]
        assert len(head_failovers) == 1
        assert head_failovers[0].detector == DETECTOR_PROC_EXIT

        # Digest parity on every survivor, on disk and in the outcomes.
        payload = source.expected_bytes(0, source.size)
        for name in RECEIVERS:
            assert result.outcomes[name].ok, result.outcomes[name]
            assert (tmp_path / f"{name}.out").read_bytes() == payload, name
        assert not result.outcomes["n1"].ok

    def test_minority_replica_death_causes_no_interruption(self, tmp_path):
        """Killing one of three control replicas mid-transfer is
        invisible to the data plane: no election, no failed nodes, exact
        bytes everywhere."""
        source = PatternSource(4 * 1024 * 1024)
        result = run_broadcast(
            source, ["n2", "n3", "n4"], trace=True,
            crashes=[("replica:0", 512 * 1024, "close")],
            coordinator_replicas=3,
            output_template=str(tmp_path / "{node}.out"), **PROCS)
        assert result.ok, result.outcomes
        assert result.trace.of_type(ELECTION) == []
        assert result.report.failed_nodes == []
        payload = source.expected_bytes(0, source.size)
        expected = sha256_of(source)
        for name in ("n2", "n3", "n4"):
            assert result.outcomes[name].digest == expected, name
            assert (tmp_path / f"{name}.out").read_bytes() == payload, name

    def test_head_chaos_requires_the_opt_in_and_a_quorum(self):
        with pytest.raises(KascadeError, match="allow_head_chaos"):
            run_broadcast(PatternSource(64 * 1024), ["n2"],
                          crashes=[("n1", 0, "close")], **PROCS)
        with pytest.raises(KascadeError, match="coordinator_replicas"):
            run_broadcast(PatternSource(64 * 1024), ["n2"],
                          crashes=[("n1", 0, "close")],
                          allow_head_chaos=True, **PROCS)

    def test_chaos_on_a_nonexistent_replica_rejected(self):
        with pytest.raises(KascadeError, match="will not exist"):
            run_broadcast(PatternSource(64 * 1024), ["n2"],
                          crashes=[("replica:5", 0, "close")],
                          coordinator_replicas=3, **PROCS)


class TestLocalHeadFailover:
    def run_local(self, crash=HEAD_CRASH):
        source = PatternSource(SOURCE_BYTES)
        sinks = {}

        def sink_factory(name):
            sinks[name] = BufferSink()
            return sinks[name]

        result = run_broadcast(
            source, RECEIVERS, backend="local", config=FAST, timeout=60.0,
            trace=True, sink_factory=sink_factory, crashes=[crash],
            allow_head_chaos=True)
        return source, sinks, result

    def test_head_crash_promotes_the_most_complete_survivor(self):
        source, sinks, result = self.run_local()
        assert result.ok, result.outcomes

        # Watermarks fall monotonically down the chain, so the first
        # receiver is always the most complete — election is
        # deterministic: n2 wins, chain order otherwise preserved.
        elections = result.trace.of_type(ELECTION)
        assert len(elections) == 1
        assert (elections[0].node, elections[0].peer) == ("coordinator", "n2")
        assert elections[0].offset > 0
        assert result.plan.base.head == "n2"
        assert result.plan.base.chain == ("n2", "n3", "n4", "n5", "n6")

        failovers = [(e.node, e.peer)
                     for e in result.trace.of_type(FAILOVER)]
        assert failovers == [("coordinator", "n1")]

        assert result.outcomes["n1"].crashed
        payload = source.expected_bytes(0, source.size)
        for name in RECEIVERS:
            assert result.outcomes[name].ok, result.outcomes[name]
            assert sinks[name].getvalue() == payload, name
        assert result.total_bytes == source.size

    def test_silent_head_crash_also_fails_over(self):
        # A SIGSTOP-style hang (sockets held open) resolves through the
        # ping path instead of the RST path; the promotion is the same.
        source, sinks, result = self.run_local(
            crash=("n1", 1024 * 1024, "silent"))
        assert result.ok, result.outcomes
        assert len(result.trace.of_type(ELECTION)) == 1
        payload = source.expected_bytes(0, source.size)
        for name in RECEIVERS:
            assert sinks[name].getvalue() == payload, name

    def test_local_gates(self):
        with pytest.raises(KascadeError, match="allow_head_chaos"):
            run_broadcast(PatternSource(64 * 1024), ["n2"], backend="local",
                          config=FAST, crashes=[("n1", 0, "close")])
        with pytest.raises(KascadeError, match="1-stripe"):
            run_broadcast(PatternSource(256 * 1024), ["n2", "n3"],
                          backend="local", config=FAST, stripes=2,
                          crashes=[("n1", 0, "close")],
                          allow_head_chaos=True)


class TestTraceParity:
    def test_milestone_parity_across_backends(self, tmp_path):
        """Satellite: the merged cross-process trace and the in-process
        trace tell the same story through a failover — one coordinator
        ELECTION, then DONE tail→head on the re-rooted chain."""
        source = PatternSource(SOURCE_BYTES)
        sinks = {}

        def sink_factory(name):
            sinks[name] = BufferSink()
            return sinks[name]

        local = run_broadcast(
            source, RECEIVERS, backend="local", config=FAST, timeout=60.0,
            trace=True, sink_factory=sink_factory, crashes=[HEAD_CRASH],
            allow_head_chaos=True)
        procs = run_broadcast(
            source, RECEIVERS, trace=True, crashes=[HEAD_CRASH],
            coordinator_replicas=3, allow_head_chaos=True,
            output_template=str(tmp_path / "{node}.out"), **PROCS)
        assert local.ok and procs.ok
        expected = [("election", "coordinator")]
        expected += [("done", n) for n in reversed(RECEIVERS)]
        assert local.trace.milestones("election", "done") == expected
        assert procs.trace.milestones("election", "done") == expected
        assert local.plan.base.head == procs.plan.base.head == "n2"
