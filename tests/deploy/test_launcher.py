"""Unit tests for the windowed launcher, with a fake process fabric.

No real processes here: ``spawn`` returns scripted handles and
``wait_registered`` consults a scripted registration table, so retry,
timeout, and windowing logic are tested in milliseconds.
"""

import threading
import time
from typing import Dict, Optional, Tuple

import pytest

from repro.deploy.launcher import (
    LaunchReport,
    NodeLaunch,
    WindowedLauncher,
)
from repro.deploy.protocol import DeployError
from repro.launch.models import LaunchComparison, TakTukWindowed


class FakeProc:
    def __init__(self, rc: Optional[int] = None) -> None:
        self.pid = 4242
        self._rc = rc
        self.killed = False

    def poll(self) -> Optional[int]:
        return self._rc

    def kill(self) -> None:
        self.killed = True
        if self._rc is None:
            self._rc = -9

    def wait(self, timeout: Optional[float] = None) -> int:
        return self._rc if self._rc is not None else 0


class FakeFabric:
    """Scripted cluster: per-(node, attempt) behaviour.

    ``"ok"`` registers after ``register_delay`` seconds; ``"die"`` exits
    with code 3 and never registers; ``"hang"`` neither registers nor
    exits.  Unscripted attempts default to ``"ok"``.
    """

    def __init__(self, script: Dict[Tuple[str, int], str] = None,
                 register_delay: float = 0.03) -> None:
        self.script = script or {}
        self.register_delay = register_delay
        self._lock = threading.Lock()
        self._registered_at: Dict[str, float] = {}
        self.spawn_log = []
        self.in_flight = 0
        self.max_in_flight = 0

    def spawn(self, name: str, attempt: int) -> FakeProc:
        behaviour = self.script.get((name, attempt), "ok")
        with self._lock:
            self.spawn_log.append((name, attempt))
            self.in_flight += 1
            self.max_in_flight = max(self.max_in_flight, self.in_flight)
            if behaviour == "ok":
                self._registered_at[name] = (
                    time.monotonic() + self.register_delay)
        if behaviour == "die":
            return FakeProc(rc=3)
        return FakeProc()

    def wait_registered(self, name: str, timeout: float) -> bool:
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                reg = self._registered_at.get(name)
            if reg is not None and time.monotonic() >= reg:
                with self._lock:
                    self.in_flight -= 1
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.005)


class TestValidation:
    def test_degenerate_window_rejected(self):
        with pytest.raises(DeployError, match="window"):
            WindowedLauncher(lambda n, a: FakeProc(), window=0)

    def test_negative_retries_rejected(self):
        with pytest.raises(DeployError, match="retries"):
            WindowedLauncher(lambda n, a: FakeProc(), retries=-1)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(DeployError, match="startup_timeout"):
            WindowedLauncher(lambda n, a: FakeProc(), startup_timeout=0)

    def test_empty_launch_rejected(self):
        fabric = FakeFabric()
        launcher = WindowedLauncher(fabric.spawn)
        with pytest.raises(DeployError, match="nothing to launch"):
            launcher.launch([], fabric.wait_registered)


class TestHappyPath:
    def test_all_nodes_register(self):
        fabric = FakeFabric()
        launcher = WindowedLauncher(fabric.spawn, window=4,
                                    startup_timeout=2.0)
        names = [f"n{i}" for i in range(1, 9)]
        report = launcher.launch(names, fabric.wait_registered)
        assert sorted(report.launched) == sorted(names)
        assert report.failed == []
        assert report.retries == 0
        assert report.window == 4
        assert report.total_s > 0
        for nl in report.nodes.values():
            assert nl.ok and nl.attempts == 1
            assert nl.proc is not None
            assert nl.startup_s >= fabric.register_delay * 0.5

    def test_window_bounds_in_flight_spawns(self):
        fabric = FakeFabric(register_delay=0.05)
        launcher = WindowedLauncher(fabric.spawn, window=2,
                                    startup_timeout=2.0)
        report = launcher.launch([f"n{i}" for i in range(1, 9)],
                                 fabric.wait_registered)
        assert report.failed == []
        assert fabric.max_in_flight <= 2
        # 8 nodes / window 2 with a fixed register delay: at least 4 waves.
        assert report.total_s >= 4 * 0.05 * 0.9


class TestRetryAndFailure:
    def test_early_exit_is_retried_and_succeeds(self):
        fabric = FakeFabric(script={("n3", 0): "die"})
        launcher = WindowedLauncher(fabric.spawn, retries=1, backoff=0.01,
                                    startup_timeout=2.0)
        report = launcher.launch(["n1", "n2", "n3"], fabric.wait_registered)
        assert report.failed == []
        assert report.nodes["n3"].attempts == 2
        assert report.retries == 1
        assert ("n3", 0) in fabric.spawn_log and ("n3", 1) in fabric.spawn_log

    def test_persistent_death_exhausts_retries(self):
        fabric = FakeFabric(script={("n3", a): "die" for a in range(3)})
        launcher = WindowedLauncher(fabric.spawn, retries=2, backoff=0.01,
                                    startup_timeout=2.0)
        report = launcher.launch(["n1", "n3"], fabric.wait_registered)
        assert report.failed == ["n3"]
        nl = report.nodes["n3"]
        assert nl.attempts == 3
        assert not nl.ok and nl.proc is None
        assert "exited before registering" in nl.error
        assert "code 3" in nl.error

    def test_never_registering_hits_startup_timeout(self):
        fabric = FakeFabric(script={("n2", 0): "hang"})
        launcher = WindowedLauncher(fabric.spawn, retries=0,
                                    startup_timeout=0.15)
        report = launcher.launch(["n1", "n2"], fabric.wait_registered)
        assert report.failed == ["n2"]
        assert "never registered within" in report.nodes["n2"].error

    def test_failed_attempts_are_reaped(self):
        procs = []

        def spawn(name, attempt):
            proc = FakeProc()  # hangs: never registers, never exits
            procs.append(proc)
            return proc

        fabric = FakeFabric()
        launcher = WindowedLauncher(spawn, retries=1, backoff=0.01,
                                    startup_timeout=0.1)
        report = launcher.launch(["n2"], fabric.wait_registered)
        assert report.failed == ["n2"]
        assert len(procs) == 2 and all(p.killed for p in procs)

    def test_spawn_exception_counts_as_attempt(self):
        calls = []

        def flaky_spawn(name, attempt):
            calls.append(attempt)
            if attempt == 0:
                raise OSError("fork: resource temporarily unavailable")
            fabric._registered_at[name] = time.monotonic()
            return FakeProc()

        fabric = FakeFabric()
        launcher = WindowedLauncher(flaky_spawn, retries=1, backoff=0.01,
                                    startup_timeout=2.0)
        report = launcher.launch(["n2"], fabric.wait_registered)
        assert report.failed == []
        assert calls == [0, 1]
        assert report.nodes["n2"].attempts == 2


class TestLaunchReport:
    def _report(self) -> LaunchReport:
        return LaunchReport(window=4, total_s=0.5, nodes={
            "n1": NodeLaunch("n1", ok=True, attempts=1,
                             spawned_at=0.0, registered_at=0.2),
            "n2": NodeLaunch("n2", ok=True, attempts=3,
                             spawned_at=0.1, registered_at=0.45),
            "n3": NodeLaunch("n3", ok=False, attempts=2, error="boom"),
        })

    def test_properties(self):
        report = self._report()
        assert report.launched == ["n1", "n2"]
        assert report.failed == ["n3"]
        assert report.retries == 3  # (1-1) + (3-1) + (2-1)

    def test_compare_defaults_to_taktuk_windowed(self):
        cmp = self._report().compare()
        assert isinstance(cmp, LaunchComparison)
        assert isinstance(cmp.launcher, TakTukWindowed)
        assert cmp.launcher.window == 4
        assert cmp.n_nodes == 3
        assert cmp.measured_s == 0.5

    def test_compare_accepts_explicit_model(self):
        model = TakTukWindowed(window=2, per_node=0.01)
        cmp = self._report().compare(model, rtt=1e-3)
        assert cmp.launcher is model
        assert cmp.predicted_s == pytest.approx(
            model.startup_time(3, 1e-3))

    def test_summary_mentions_counts_retries_and_slowest(self):
        line = self._report().summary()
        assert "2/3 agents" in line
        assert "window 4" in line
        assert "3 retries" in line
        assert "slowest n2" in line  # 0.35s beats n1's 0.2s
