"""Integration tests: real multi-process broadcasts on localhost.

Every test here spawns genuine ``kascade agent`` subprocesses through
``run_broadcast(backend="procs")`` and, for the chaos cases, kills them
with real signals mid-transfer — the semantics the thread-based runtime
can only approximate.
"""

import hashlib

import pytest

from repro import run_broadcast
from repro.core import BytesSource, KascadeConfig, KascadeError
from repro.core.sinks import HashingSink
from repro.core.sources import PatternSource
from repro.core.tracing import (
    DETECTOR_ERROR,
    DETECTOR_PING,
    DETECTOR_PROC_EXIT,
    FAILOVER,
)
from repro.deploy import LaunchReport
from repro.launch.models import LaunchComparison

FAST = KascadeConfig(
    chunk_size=64 * 1024,
    buffer_chunks=8,
    io_timeout=0.5,
    ping_timeout=0.4,
    connect_timeout=1.0,
    report_timeout=6.0,
)

#: Common procs knobs: frequent progress so chaos triggers promptly.
PROCS = dict(backend="procs", config=FAST, timeout=90.0,
             progress_every=128 * 1024, startup_timeout=20.0)


def sha256_of(source: PatternSource) -> str:
    return hashlib.sha256(source.expected_bytes(0, source.size)).hexdigest()


class TestCleanRun:
    def test_digest_parity_with_local_backend(self):
        """The same payload through real processes and through threads
        must hash identically — byte-exactness across the backends."""
        payload = bytes((i * 13) % 256 for i in range(2 * 1024 * 1024))
        local_sinks = {}

        def hashing_factory(name):
            local_sinks[name] = HashingSink()
            return local_sinks[name]

        local = run_broadcast(BytesSource(payload), ["n2", "n3"],
                              config=FAST, sink_factory=hashing_factory,
                              timeout=60.0)
        procs = run_broadcast(BytesSource(payload), ["n2", "n3"], **PROCS)
        assert local.ok and procs.ok
        expected = hashlib.sha256(payload).hexdigest()
        assert {s.hexdigest() for s in local_sinks.values()} == {expected}
        assert {procs.outcomes[n].digest for n in ("n2", "n3")} == {expected}
        assert procs.total_bytes == local.total_bytes == len(payload)
        assert procs.backend == "procs"

    def test_launch_timings_recorded_and_comparable(self):
        result = run_broadcast(PatternSource(256 * 1024), ["n2", "n3", "n4"],
                               window=2, **PROCS)
        assert result.ok
        launch = result.launch
        assert isinstance(launch, LaunchReport)
        assert launch.window == 2
        assert sorted(launch.nodes) == ["n1", "n2", "n3", "n4"]
        assert launch.failed == []
        assert launch.total_s > 0
        for nl in launch.nodes.values():
            assert nl.startup_s is not None and nl.startup_s > 0
        comparison = launch.compare()
        assert isinstance(comparison, LaunchComparison)
        assert comparison.measured_s == launch.total_s
        assert comparison.predicted_s > 0
        assert "TakTukWindowed" in comparison.render()

    def test_output_template_writes_files(self, tmp_path):
        source = PatternSource(512 * 1024)
        result = run_broadcast(
            source, ["n2", "n3"],
            output_template=str(tmp_path / "{node}.out"), **PROCS)
        assert result.ok
        for name in ("n2", "n3"):
            data = (tmp_path / f"{name}.out").read_bytes()
            assert data == source.expected_bytes(0, source.size)

    def test_local_backend_unaffected_by_launch_field(self):
        result = run_broadcast(BytesSource(b"x" * 65536), ["n2"],
                               config=FAST, timeout=60.0)
        assert result.ok and result.launch is None


class TestChaos:
    def test_sigkill_mid_transfer(self):
        """The acceptance scenario: an 8-process broadcast survives a
        real SIGKILL — correct digests on survivors, a REPORT naming the
        dead node, and both coordinator (proc-exit) and peer (error)
        FAILOVER detections in the trace."""
        source = PatternSource(8 * 1024 * 1024)
        receivers = [f"n{i}" for i in range(2, 9)]  # 7 + head = 8 procs
        result = run_broadcast(
            source, receivers, trace=True,
            crashes=[("n4", 1024 * 1024, "close")], **PROCS)
        assert result.ok  # the planned kill is excused
        survivors = [n for n in receivers if n != "n4"]
        expected = sha256_of(source)
        for name in survivors:
            outcome = result.outcomes[name]
            assert outcome.ok and outcome.digest == expected
        assert not result.outcomes["n4"].ok
        # Ring-closure REPORT names exactly the dead node.
        assert result.report.failed_nodes == ["n4"]
        # The coordinator saw the real process die...
        failovers = result.trace.of_type(FAILOVER)
        proc_exits = [e for e in failovers
                      if e.detector == DETECTOR_PROC_EXIT]
        assert [e.peer for e in proc_exits] == ["n4"]
        assert "SIGKILL" in proc_exits[0].detail
        # ...and the upstream peer saw the RST (error-detector path).
        peer_detections = [e for e in failovers if e.node != "coordinator"
                           and e.peer == "n4"]
        assert peer_detections
        assert peer_detections[0].detector == DETECTOR_ERROR

    def test_sigstop_resolved_by_timeout_plus_ping(self):
        """A SIGSTOPped process keeps its sockets open — peers must
        disambiguate via the §III-D1 timeout + liveness ping."""
        source = PatternSource(8 * 1024 * 1024)
        result = run_broadcast(
            source, ["n2", "n3", "n4"], trace=True,
            crashes=[("n3", 1024 * 1024, "silent")],
            heartbeat_interval=0.2, **PROCS)
        assert result.ok
        expected = sha256_of(source)
        for name in ("n2", "n4"):
            assert result.outcomes[name].ok
            assert result.outcomes[name].digest == expected
        assert not result.outcomes["n3"].ok
        assert result.report.failed_nodes == ["n3"]
        # Data-plane detection must be the ping detector: no RST exists.
        peer_detections = [
            e for e in result.trace.of_type(FAILOVER)
            if e.node != "coordinator" and e.peer == "n3"
        ]
        assert peer_detections
        assert {e.detector for e in peer_detections} == {DETECTOR_PING}


class TestStriped:
    def test_two_stripes_byte_exact_output(self, tmp_path):
        """k = 2 through real processes: each agent binds two listeners,
        runs two interleaved chains, and the merged file on disk is
        byte-identical to the source."""
        source = PatternSource(2 * 1024 * 1024, seed=4)
        result = run_broadcast(
            source, ["n2", "n3", "n4"], stripes=2,
            output_template=str(tmp_path / "{node}.out"), **PROCS)
        assert result.ok, result.outcomes
        assert result.plan is not None and result.plan.stripe_count == 2
        expected = sha256_of(source)
        payload = source.expected_bytes(0, source.size)
        for name in ("n2", "n3", "n4"):
            assert result.outcomes[name].digest == expected, name
            assert (tmp_path / f"{name}.out").read_bytes() == payload, name

    def test_sigkill_on_a_striped_run(self):
        """A real SIGKILL takes down both of the victim's stripe chains;
        survivors' merged digests stay exact and the pooled report names
        the dead host."""
        source = PatternSource(4 * 1024 * 1024, seed=6)
        result = run_broadcast(
            source, ["n2", "n3", "n4", "n5"], stripes=2,
            crashes=[("n3", 400_000, "close")], **PROCS)
        assert result.ok, result.outcomes
        expected = sha256_of(source)
        for name in ("n2", "n4", "n5"):
            assert result.outcomes[name].ok, result.outcomes[name]
            assert result.outcomes[name].digest == expected, name
        assert not result.outcomes["n3"].ok
        assert set(result.report.failed_nodes) == {"n3"}


class TestLaunchFailures:
    def test_agent_dying_before_registering_is_retried(self):
        result = run_broadcast(
            PatternSource(256 * 1024), ["n2", "n3"],
            spawn_retries=1, backoff=0.05,
            agent_args=lambda name, attempt: (
                ["--die-on-start"] if (name == "n3" and attempt == 0)
                else []),
            **PROCS)
        assert result.ok
        assert result.launch.nodes["n3"].attempts == 2
        assert result.launch.retries == 1

    def test_persistent_launch_failure_replans_the_chain(self):
        """A node that never comes up is dropped before data flows:
        the rest of the chain still completes, the failure is reported,
        and the overall run is not ok (the death was not planned)."""
        source = PatternSource(256 * 1024)
        result = run_broadcast(
            source, ["n2", "n3", "n4"], trace=True,
            spawn_retries=1, backoff=0.05,
            agent_args=lambda name, attempt: (
                ["--die-on-start"] if name == "n3" else []),
            **PROCS)
        assert not result.ok
        expected = sha256_of(source)
        for name in ("n2", "n4"):
            assert result.outcomes[name].ok
            assert result.outcomes[name].digest == expected
        n3 = result.outcomes["n3"]
        assert not n3.ok and "launch failed" in n3.error
        # The launcher's failure record reaches the caller's report...
        assert "n3" in result.report.failed_nodes
        launcher_records = [f for f in result.report.failures
                            if f.detected_by == "launcher"]
        assert [f.node for f in launcher_records] == ["n3"]
        # ...and the trace carries a proc-exit FAILOVER from the launcher.
        launch_failovers = [e for e in result.trace.of_type(FAILOVER)
                            if e.node == "launcher"]
        assert [e.peer for e in launch_failovers] == ["n3"]
        assert launch_failovers[0].detector == DETECTOR_PROC_EXIT

    def test_head_launch_failure_fails_the_run(self):
        result = run_broadcast(
            PatternSource(64 * 1024), ["n2"],
            spawn_retries=0,
            agent_args=lambda name, attempt: (
                ["--die-on-start"] if name == "n1" else []),
            **PROCS)
        assert not result.ok
        assert result.total_bytes == 0
        assert "n1" in result.report.failed_nodes


class TestBackendSelection:
    def test_unknown_backend_renders_the_catalogue(self):
        with pytest.raises(KascadeError) as err:
            run_broadcast(BytesSource(b"x"), ["n2"], backend="fluid")
        message = str(err.value)
        assert "unknown backend 'fluid'" in message
        for name in ("local", "procs", "simnet"):
            assert name in message

    def test_procs_rejects_sink_factory(self):
        with pytest.raises(KascadeError, match="output_template"):
            run_broadcast(BytesSource(b"x"), ["n2"], backend="procs",
                          sink_factory=lambda name: None)

    def test_procs_rejects_unknown_options(self):
        with pytest.raises(KascadeError, match="unknown procs options"):
            run_broadcast(BytesSource(b"x"), ["n2"], backend="procs",
                          bandwidth=1e9)

    def test_output_template_needs_node_placeholder(self):
        with pytest.raises(KascadeError, match="placeholder"):
            run_broadcast(BytesSource(b"x"), ["n2", "n3"], backend="procs",
                          output_template="/tmp/same-file.out")

    def test_chaos_plans_for_unknown_nodes_rejected(self):
        with pytest.raises(KascadeError, match="unknown nodes"):
            run_broadcast(BytesSource(b"x"), ["n2"], backend="procs",
                          crashes=[("n9", 0, "close")])
