"""Unit tests for the JSON-lines control-plane protocol."""

import socket
import threading

import pytest

from repro.deploy.protocol import (
    MAX_LINE,
    ControlChannel,
    DeployError,
    connect_control,
)


@pytest.fixture
def channel_pair():
    a, b = socket.socketpair()
    left, right = ControlChannel(a), ControlChannel(b)
    yield left, right
    left.close()
    right.close()


class TestRoundtrip:
    def test_send_recv_one_message(self, channel_pair):
        left, right = channel_pair
        assert left.send({"op": "hello", "name": "n2", "pid": 123})
        msg = right.recv(timeout=2.0)
        assert msg == {"op": "hello", "name": "n2", "pid": 123}

    def test_messages_keep_order(self, channel_pair):
        left, right = channel_pair
        for i in range(20):
            left.send({"op": "progress", "bytes": i})
        got = [right.recv(timeout=2.0)["bytes"] for _ in range(20)]
        assert got == list(range(20))

    def test_partial_line_is_buffered_across_reads(self, channel_pair):
        left, right = channel_pair
        raw = b'{"op": "status", "ok": true}\n'
        left._sock.sendall(raw[:10])
        with pytest.raises(TimeoutError):
            right.recv(timeout=0.05)
        left._sock.sendall(raw[10:])
        assert right.recv(timeout=2.0) == {"op": "status", "ok": True}

    def test_concurrent_senders_do_not_interleave(self, channel_pair):
        # The agent's heartbeat thread and node thread share one channel.
        left, right = channel_pair
        n_threads, per_thread = 4, 50
        threads = [
            threading.Thread(target=lambda t=t: [
                left.send({"op": "progress", "t": t, "i": i})
                for i in range(per_thread)
            ])
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        msgs = [right.recv(timeout=2.0) for _ in range(n_threads * per_thread)]
        for t in threads:
            t.join()
        assert all(m["op"] == "progress" for m in msgs)
        for t in range(n_threads):
            mine = [m["i"] for m in msgs if m["t"] == t]
            assert mine == list(range(per_thread))


class TestFailureModes:
    def test_eof_returns_none(self, channel_pair):
        left, right = channel_pair
        left.close()
        assert right.recv(timeout=2.0) is None

    def test_send_after_peer_gone_returns_false(self, channel_pair):
        left, right = channel_pair
        right.close()
        # The first send may land in the kernel buffer; eventually False.
        results = [left.send({"op": "heartbeat"}) for _ in range(10)]
        assert results[-1] is False

    def test_send_on_closed_channel_returns_false(self, channel_pair):
        left, _right = channel_pair
        left.close()
        assert left.send({"op": "heartbeat"}) is False

    def test_bad_json_raises(self, channel_pair):
        left, right = channel_pair
        left._sock.sendall(b"this is not json\n")
        with pytest.raises(DeployError, match="bad control message"):
            right.recv(timeout=2.0)

    def test_message_without_op_raises(self, channel_pair):
        left, right = channel_pair
        left._sock.sendall(b'{"name": "n2"}\n')
        with pytest.raises(DeployError, match="without op"):
            right.recv(timeout=2.0)

    def test_non_object_message_raises(self, channel_pair):
        left, right = channel_pair
        left._sock.sendall(b"[1, 2, 3]\n")
        with pytest.raises(DeployError, match="without op"):
            right.recv(timeout=2.0)

    def test_blank_lines_are_skipped(self, channel_pair):
        left, right = channel_pair
        left._sock.sendall(b'\n\n{"op": "heartbeat"}\n')
        assert right.recv(timeout=2.0) == {"op": "heartbeat"}

    def test_oversize_line_is_a_protocol_violation(self):
        a, b = socket.socketpair()
        right = ControlChannel(b)
        # Don't actually ship 16 MiB: preload the buffer past the cap.
        right._recv_buf = bytearray(MAX_LINE + 1)
        with pytest.raises(DeployError, match="exceeds"):
            right.recv(timeout=0.1)
        a.close()
        right.close()

    def test_connect_control_refused(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        with pytest.raises(DeployError, match="unreachable"):
            connect_control("127.0.0.1", port, timeout=1.0)
