"""Tests for the protocol soak-testing module."""

import pytest

from repro.protosim import (
    FuzzReport,
    generate_case,
    run_campaign,
    run_case,
)
from repro.protosim.fuzz import FuzzFailure


class TestGeneration:
    def test_deterministic_from_seed(self):
        a, b = generate_case(7), generate_case(7)
        assert a == b

    def test_distinct_seeds_differ(self):
        cases = {generate_case(s) for s in range(20)}
        assert len(cases) > 15

    def test_victims_are_receivers(self):
        for seed in range(30):
            case = generate_case(seed)
            receivers = {f"n{i}" for i in range(2, case.n_receivers + 2)}
            assert {c.node for c in case.crashes} <= receivers

    def test_describe_mentions_seed(self):
        assert "seed=3" in generate_case(3).describe()


class TestCampaign:
    def test_small_campaign_clean(self):
        report = run_campaign(8, base_seed=500)
        assert report.ok, report.summary()
        assert report.runs == 8
        assert "OK" in report.summary()

    def test_progress_callback(self):
        seen = []
        run_campaign(3, base_seed=600,
                     progress=lambda d, t, p: seen.append((d, t, p)))
        assert seen == [(1, 3, None), (2, 3, None), (3, 3, None)]

    def test_failure_reporting_format(self):
        report = FuzzReport(runs=1, crash_injections=0, failures=[
            FuzzFailure(case=generate_case(9), problem="made-up problem")
        ])
        assert not report.ok
        text = report.summary()
        assert "made-up problem" in text
        assert "seed=9" in text

    def test_single_case_replayable(self):
        case = generate_case(12)
        assert run_case(case) is None
        assert run_case(case) is None  # identical replay


class TestCliFuzz:
    def test_cli(self, capsys):
        from repro.cli.kascade_sim import main as sim_main
        rc = sim_main(["fuzz", "--runs", "4", "--seed", "700"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "4 randomized scenarios" in out
