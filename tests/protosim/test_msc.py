"""Tests for message tracing and sequence-chart rendering."""

import pytest

from repro.core import (
    Data,
    End,
    Get,
    KascadeConfig,
    Passed,
    PatternSource,
    Report,
)
from repro.protosim import (
    ProtoBroadcast,
    ProtoCrash,
    collapse_data_runs,
    render_msc,
)

CFG = KascadeConfig(
    chunk_size=64 * 1024, buffer_chunks=8,
    io_timeout=0.5, ping_timeout=0.3, connect_timeout=1.0,
    report_timeout=10.0,
)


class TestCollapse:
    def test_data_run_collapses(self):
        events = [
            (0.0, "a", "b", Get(0), 0),
            (0.1, "a", "b", Data(0, 10), 10),
            (0.2, "a", "b", Data(10, 10), 10),
            (0.3, "a", "b", Data(20, 10), 10),
            (0.4, "a", "b", End(30), 0),
        ]
        arrows = collapse_data_runs(events)
        labels = [label for _t, _s, _d, label in arrows]
        assert labels == ["GET(0)", "DATA x3", "END(30)"]

    def test_runs_split_on_direction_change(self):
        events = [
            (0.0, "a", "b", Data(0, 10), 10),
            (0.1, "b", "c", Data(0, 10), 10),
            (0.2, "a", "b", Data(10, 10), 10),
        ]
        arrows = collapse_data_runs(events)
        assert len(arrows) == 3

    def test_single_data_plain_label(self):
        arrows = collapse_data_runs([(0.0, "a", "b", Data(0, 1), 1)])
        assert arrows[0][3] == "DATA"


class TestRender:
    def _trace(self):
        bc = ProtoBroadcast(PatternSource(256 * 1024, seed=1),
                            ["n2", "n3"], config=CFG)
        result = bc.run(trace=True)
        assert result.ok
        return result.message_log

    def test_chart_structure(self):
        chart = render_msc(self._trace(), ["n1", "n2", "n3"])
        lines = chart.splitlines()
        assert lines[0].startswith("n1")
        assert "GET(0)" in chart
        assert "END(" in chart
        assert "PASSED" in chart
        assert "REPORT(" in chart

    def test_arrows_directional(self):
        chart = render_msc(self._trace(), ["n1", "n2", "n3"])
        assert ">" in chart and "<" in chart

    def test_annotations_merged(self):
        chart = render_msc(self._trace(), ["n1", "n2", "n3"],
                           annotations=[(0.001, "SOMETHING HAPPENED")])
        assert "*** SOMETHING HAPPENED ***" in chart

    def test_failure_chart_shows_reconnection(self):
        bc = ProtoBroadcast(
            PatternSource(512 * 1024, seed=1), ["n2", "n3"], config=CFG,
            crashes=[ProtoCrash("n2", after_bytes=128 * 1024)],
        )
        result = bc.run(trace=True)
        assert result.ok
        # The recovery: after n2's death a *direct* n3 -> n1 GET and
        # n1 -> n3 DATA path appears in the trace.
        assert any(src == "n3" and dst == "n1" and isinstance(m, Get)
                   for _t, src, dst, m, _p in result.message_log)
        assert any(src == "n1" and dst == "n3" and isinstance(m, Data)
                   for _t, src, dst, m, _p in result.message_log)
        chart = render_msc(result.message_log, ["n1", "n2", "n3"])
        assert "DATA" in chart

    def test_trace_off_by_default(self):
        bc = ProtoBroadcast(PatternSource(64 * 1024, seed=1),
                            ["n2"], config=CFG)
        result = bc.run()
        assert result.message_log is None
