"""Protocol-exact simulation tests: the complete Kascade protocol on the
DES, byte-exact and deterministic.

This tier exists to test the *protocol* harder than real sockets allow:
failures land at exact byte offsets, runs are perfectly reproducible,
and a hypothesis fuzzer can push hundreds of schedules through without
wall-clock timers flaking.
"""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    BufferSink,
    HashingSink,
    KascadeConfig,
    PatternSource,
    StreamSource,
)
from repro.protosim import ProtoBroadcast, ProtoCrash

CFG = KascadeConfig(
    chunk_size=64 * 1024, buffer_chunks=8,
    io_timeout=0.5, ping_timeout=0.3, connect_timeout=1.0,
    report_timeout=10.0, verify_digest=True,
)
SIZE = 2 * 1024 * 1024


def digest_of(size, seed=5):
    src = PatternSource(size, seed=seed)
    return hashlib.sha256(src.expected_bytes(0, size)).hexdigest()


def run(receivers, crashes=(), size=SIZE, config=CFG, seed=5):
    sinks = {}

    def factory(name):
        sinks[name] = HashingSink()
        return sinks[name]

    bc = ProtoBroadcast(
        PatternSource(size, seed=seed), receivers,
        sink_factory=factory, config=config, crashes=crashes,
    )
    return bc.run(), sinks


class TestHappyPath:
    def test_byte_exact_delivery(self):
        result, sinks = run(["n2", "n3", "n4", "n5"])
        assert result.ok
        want = digest_of(SIZE)
        assert all(s.hexdigest() == want for s in sinks.values())
        assert result.report.source_digest is not None
        assert not result.report.failures

    def test_deterministic(self):
        a, _ = run(["n2", "n3", "n4"])
        b, _ = run(["n2", "n3", "n4"])
        assert a.sim_time == b.sim_time
        assert a.total_bytes == b.total_bytes

    def test_pipeline_timing_scales_like_a_pipeline(self):
        """Adding nodes must cost fill time, not serialization."""
        t2, _ = run(["n2", "n3"])
        t8, _ = run([f"n{i}" for i in range(2, 10)])
        assert t8.sim_time < t2.sim_time * 2

    def test_empty_stream(self):
        result, _ = run(["n2", "n3"], size=0)
        assert result.ok
        assert result.total_bytes == 0

    def test_single_chunk(self):
        result, sinks = run(["n2"], size=1000)
        assert result.ok
        assert sinks["n2"].bytes_written == 1000


class TestCrashRecovery:
    def test_hard_crash_detected_instantly(self):
        # A reset connection needs no timeout: recovery is sub-second.
        result, sinks = run(
            ["n2", "n3", "n4"],
            crashes=(ProtoCrash("n3", after_bytes=SIZE // 3),),
        )
        assert result.ok
        assert result.report.failed_nodes == ["n3"]
        want = digest_of(SIZE)
        assert sinks["n2"].hexdigest() == want
        assert sinks["n4"].hexdigest() == want

    def test_silent_crash_costs_a_detection_timeout(self):
        clean, _ = run(["n2", "n3", "n4"])
        silent, sinks = run(
            ["n2", "n3", "n4"],
            crashes=(ProtoCrash("n3", after_bytes=SIZE // 3,
                                mode="silent"),),
        )
        assert silent.ok
        assert sinks["n4"].hexdigest() == digest_of(SIZE)
        # Roughly io_timeout + ping_timeout more than the clean run.
        extra = silent.sim_time - clean.sim_time
        assert 0.4 < extra < 3.0

    def test_crash_at_exact_first_byte(self):
        result, sinks = run(
            ["n2", "n3", "n4"],
            crashes=(ProtoCrash("n2", after_bytes=CFG.chunk_size),),
        )
        assert result.ok
        assert result.report.failed_nodes == ["n2"]
        assert sinks["n3"].hexdigest() == digest_of(SIZE)

    def test_tail_crash(self):
        result, sinks = run(
            ["n2", "n3", "n4"],
            crashes=(ProtoCrash("n4", after_bytes=SIZE // 2),),
        )
        assert result.ok
        assert result.report.failed_nodes == ["n4"]
        assert sinks["n3"].hexdigest() == digest_of(SIZE)

    def test_adjacent_crashes(self):
        result, sinks = run(
            [f"n{i}" for i in range(2, 8)],
            crashes=(ProtoCrash("n4", after_bytes=SIZE // 4),
                     ProtoCrash("n5", after_bytes=SIZE // 4)),
        )
        assert result.ok
        assert set(result.report.failed_nodes) == {"n4", "n5"}
        want = digest_of(SIZE)
        for name in ("n2", "n3", "n6", "n7"):
            assert result.node_ok[name], result.node_errors[name]

    def test_deep_recovery_via_pget(self):
        """Tiny buffer: the replacement must fetch the hole from the
        head and still end byte-exact."""
        config = CFG.with_(buffer_chunks=1)
        result, sinks = run(
            ["n2", "n3", "n4"], config=config,
            crashes=(ProtoCrash("n3", after_bytes=SIZE // 2,
                                mode="silent"),),
        )
        assert result.ok, result.node_errors
        assert sinks["n4"].hexdigest() == digest_of(SIZE)


class TestStreamSourceAbort:
    def test_forget_aborts_suffix_cleanly(self):
        import io
        data = bytes((i * 7) % 256 for i in range(SIZE))
        config = CFG.with_(buffer_chunks=1, verify_digest=False,
                           io_timeout=2.0)
        sinks = {}

        def factory(name):
            sinks[name] = BufferSink()
            return sinks[name]

        bc = ProtoBroadcast(
            StreamSource(io.BytesIO(data)), ["n2", "n3", "n4"],
            sink_factory=factory, config=config,
            crashes=(ProtoCrash("n3", after_bytes=SIZE // 2,
                                mode="silent"),),
        )
        result = bc.run()
        # n2 (before the failure) must finish byte-exact.
        assert result.node_ok["n2"], result.node_errors["n2"]
        assert sinks["n2"].getvalue() == data
        # n4 either recovered fully or aborted — never wrong bytes.
        if result.node_ok["n4"]:
            assert sinks["n4"].getvalue() == data
        else:
            assert data.startswith(sinks["n4"].getvalue()[:0] or b"")


class TestFuzz:
    @given(
        n=st.integers(min_value=2, max_value=10),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_schedules_byte_exact(self, n, data):
        receivers = [f"n{i}" for i in range(2, n + 2)]
        n_crashes = data.draw(st.integers(min_value=0,
                                          max_value=min(3, n - 1)))
        victims = data.draw(st.lists(
            st.sampled_from(receivers), min_size=n_crashes,
            max_size=n_crashes, unique=True,
        ))
        crashes = tuple(
            ProtoCrash(
                v,
                after_bytes=data.draw(
                    st.integers(min_value=1, max_value=SIZE)),
                mode=data.draw(st.sampled_from(["close", "silent"])),
            )
            for v in victims
        )
        result, sinks = run(receivers, crashes=crashes)
        survivors = [r for r in receivers if r not in victims]
        assert result.ok, (victims, result.node_errors)
        want = digest_of(SIZE)
        for name in survivors:
            assert sinks[name].hexdigest() == want, (name, victims)
        assert set(result.report.failed_nodes) == set(victims)


class TestTierEquivalence:
    def test_same_scenario_as_real_runtime(self):
        """The protocol sim and the real TCP runtime agree on outcomes
        for a fixed failure scenario (who fails, who completes, bytes)."""
        from repro.runtime import CrashPlan, LocalBroadcast

        size = 512 * 1024
        runtime_cfg = KascadeConfig(
            chunk_size=16 * 1024, buffer_chunks=8,
            io_timeout=0.25, ping_timeout=0.2, connect_timeout=0.5,
            report_timeout=6.0, verify_digest=True,
        )
        receivers = ["n2", "n3", "n4", "n5"]
        crash_at = size // 4

        rt_sinks = {}
        rt = LocalBroadcast(
            PatternSource(size, seed=9), receivers,
            sink_factory=lambda n: rt_sinks.setdefault(n, HashingSink()),
            config=runtime_cfg,
            crashes=[CrashPlan("n4", after_bytes=crash_at)],
        ).run(timeout=60)

        ps_sinks = {}
        ps = ProtoBroadcast(
            PatternSource(size, seed=9), receivers,
            sink_factory=lambda n: ps_sinks.setdefault(n, HashingSink()),
            config=runtime_cfg,
            crashes=[ProtoCrash("n4", after_bytes=crash_at)],
        ).run()

        assert rt.ok and ps.ok
        assert set(rt.report.failed_nodes) == set(ps.report.failed_nodes) == {"n4"}
        for name in ("n2", "n3", "n5"):
            assert rt_sinks[name].hexdigest() == ps_sinks[name].hexdigest()


class TestTimeBasedCrashes:
    def test_at_time_kill(self):
        clean, _ = run(["n2", "n3", "n4"])
        result, sinks = run(
            ["n2", "n3", "n4"],
            crashes=(ProtoCrash("n3", at_time=clean.sim_time / 2),),
        )
        assert result.ok
        assert result.report.failed_nodes == ["n3"]
        assert sinks["n4"].hexdigest() == digest_of(SIZE)

    def test_at_time_after_completion_is_noop(self):
        clean, _ = run(["n2", "n3"])
        result, _ = run(
            ["n2", "n3"],
            crashes=(ProtoCrash("n3", at_time=clean.sim_time + 5.0),),
        )
        # The node was already done: nothing fails, nothing hangs.
        assert result.node_ok["n2"]
        assert not result.report.failed_nodes

    def test_validation(self):
        with pytest.raises(ValueError):
            ProtoCrash("n2")
        with pytest.raises(ValueError):
            ProtoCrash("n2", after_bytes=1, at_time=1.0)
        with pytest.raises(ValueError):
            ProtoCrash("n2", after_bytes=1, mode="explode")
