"""Striped broadcast on the protocol-exact simulator.

The DES models per-link bandwidth, so ``k`` stripe chains genuinely
aggregate bandwidth — this tier is where the paper-facing speedup claim
is checked, free of host-CPU noise.  Under test:

* byte-exactness — every host's merged stream matches the source at
  k = 1, 2, 4;
* the speedup itself — k = 4 must beat the single chain by a clear
  margin in simulated seconds;
* failure handling — a host crash kills all of its stripe instances,
  every stripe chain fails over, and the survivors' merged digests are
  still exact.
"""

import hashlib

from repro.core import HashingSink, KascadeConfig, PatternSource
from repro.protosim import ProtoBroadcast, ProtoCrash

CFG = KascadeConfig(
    chunk_size=64 * 1024, buffer_chunks=8,
    io_timeout=0.5, ping_timeout=0.3, connect_timeout=1.0,
    report_timeout=10.0,
)
SIZE = 2 * 1024 * 1024
RECEIVERS = ["n2", "n3", "n4", "n5"]


def digest_of(size, seed=5):
    src = PatternSource(size, seed=seed)
    return hashlib.sha256(src.expected_bytes(0, size)).hexdigest()


def run(stripes, receivers=RECEIVERS, crashes=(), size=SIZE, seed=5):
    sinks = {}

    def factory(name):
        sinks[name] = HashingSink()
        return sinks[name]

    bc = ProtoBroadcast(
        PatternSource(size, seed=seed), receivers,
        sink_factory=factory, config=CFG.with_(stripes=stripes),
        crashes=crashes,
    )
    return bc.run(), sinks


class TestStripedDelivery:
    def test_byte_exact_at_every_stripe_count(self):
        want = digest_of(SIZE)
        for k in (1, 2, 4):
            result, sinks = run(k)
            assert result.ok, (k, result.node_errors)
            assert result.total_bytes == SIZE, k
            assert all(s.hexdigest() == want for s in sinks.values()), k

    def test_deterministic(self):
        a, _ = run(4)
        b, _ = run(4)
        assert a.sim_time == b.sim_time
        assert a.total_bytes == b.total_bytes

    def test_four_stripes_beat_one_chain(self):
        """The tentpole claim on modelled links: k chains ~ k-fold
        aggregate bandwidth.  Pipeline fill keeps small streams below
        the ideal k×; 1.5× is a conservative floor for k = 4."""
        t1, _ = run(1)
        t4, _ = run(4)
        assert t4.sim_time < t1.sim_time / 1.5, (t1.sim_time, t4.sim_time)


class TestStripedFailures:
    def test_host_crash_takes_down_every_stripe(self):
        result, sinks = run(
            4, crashes=(ProtoCrash("n3", after_bytes=SIZE // 3),))
        assert result.ok
        assert [n for n, ok in result.node_ok.items() if not ok] == ["n3"]
        assert "n3" in result.crashed
        want = digest_of(SIZE)
        for survivor in ("n2", "n4", "n5"):
            assert sinks[survivor].hexdigest() == want, survivor
        # Failure records are pooled across stripe chains but named by
        # host, never by a per-stripe instance.
        assert {f.node for f in result.report.failures} == {"n3"}
        assert all("@s" not in f.node for f in result.report.failures)

    def test_silent_crash_recovers_on_every_stripe(self):
        result, sinks = run(
            2, crashes=(ProtoCrash("n4", after_bytes=SIZE // 2,
                                   mode="silent"),))
        assert result.ok
        assert [n for n, ok in result.node_ok.items() if not ok] == ["n4"]
        want = digest_of(SIZE)
        for survivor in ("n2", "n3", "n5"):
            assert sinks[survivor].hexdigest() == want, survivor
