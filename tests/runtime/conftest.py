"""Shared fixtures for the real TCP runtime tests.

Timeouts are shrunk aggressively: failure-detection tests deliberately let
timers expire, and nobody wants a 30 s unit test.
"""

import pytest

from repro.core import KascadeConfig


@pytest.fixture
def fast_config():
    """Small chunks + short timers for quick, failure-heavy tests."""
    return KascadeConfig(
        chunk_size=4096,
        buffer_chunks=4,
        io_timeout=0.25,
        ping_timeout=0.2,
        connect_timeout=0.5,
        report_timeout=6.0,
    )
