"""End-to-end broadcasts over real localhost TCP — the happy paths."""

import hashlib

import pytest

from repro.core import BytesSource, HashingSink, PatternSource, StreamSource
from repro.runtime import LocalBroadcast


def hashing_factory(store):
    def factory(name):
        sink = HashingSink()
        store[name] = sink
        return sink
    return factory


def expected_digest(size, seed=0):
    src = PatternSource(size, seed=seed)
    return hashlib.sha256(src.expected_bytes(0, size)).hexdigest()


class TestSingleReceiver:
    def test_tiny_transfer(self, fast_config):
        sinks = {}
        bc = LocalBroadcast(
            BytesSource(b"hello kascade"),
            ["n2"],
            sink_factory=hashing_factory(sinks),
            config=fast_config,
        )
        result = bc.run(timeout=20)
        assert result.ok, result.outcomes
        assert result.total_bytes == 13
        assert sinks["n2"].hexdigest() == hashlib.sha256(b"hello kascade").hexdigest()
        assert not result.report  # no failures

    def test_empty_stream(self, fast_config):
        bc = LocalBroadcast(BytesSource(b""), ["n2"], config=fast_config)
        result = bc.run(timeout=20)
        assert result.ok, result.outcomes
        assert result.total_bytes == 0

    def test_multi_chunk_transfer(self, fast_config):
        size = fast_config.chunk_size * 10 + 123  # ragged final chunk
        sinks = {}
        bc = LocalBroadcast(
            PatternSource(size, seed=5),
            ["n2"],
            sink_factory=hashing_factory(sinks),
            config=fast_config,
        )
        result = bc.run(timeout=30)
        assert result.ok, result.outcomes
        assert result.total_bytes == size
        assert sinks["n2"].hexdigest() == expected_digest(size, seed=5)


class TestPipeline:
    @pytest.mark.parametrize("n_receivers", [2, 5, 10])
    def test_every_node_gets_identical_bytes(self, fast_config, n_receivers):
        size = fast_config.chunk_size * 6 + 17
        sinks = {}
        receivers = [f"n{i}" for i in range(2, 2 + n_receivers)]
        bc = LocalBroadcast(
            PatternSource(size, seed=1),
            receivers,
            sink_factory=hashing_factory(sinks),
            config=fast_config,
        )
        result = bc.run(timeout=60)
        assert result.ok, {n: (o.ok, o.error) for n, o in result.outcomes.items()}
        want = expected_digest(size, seed=1)
        for name in receivers:
            assert sinks[name].hexdigest() == want, f"{name} got wrong bytes"
        assert result.report.failed_nodes == []

    def test_stream_source_works(self, fast_config):
        # Head reads from a non-seekable stream: still fine without failures.
        import io
        data = b"x" * (fast_config.chunk_size * 3 + 7)
        sinks = {}
        bc = LocalBroadcast(
            StreamSource(io.BytesIO(data)),
            ["n2", "n3", "n4"],
            sink_factory=hashing_factory(sinks),
            config=fast_config,
        )
        result = bc.run(timeout=30)
        assert result.ok, result.outcomes
        want = hashlib.sha256(data).hexdigest()
        assert all(sinks[n].hexdigest() == want for n in ("n2", "n3", "n4"))

    def test_hostname_ordering_applied(self, fast_config):
        bc = LocalBroadcast(
            BytesSource(b"ordering"),
            ["n10", "n3", "n2"],
            config=fast_config,
            order="hostname",
        )
        assert bc.plan.receivers == ("n2", "n3", "n10")
        result = bc.run(timeout=20)
        assert result.ok

    def test_throughput_positive(self, fast_config):
        bc = LocalBroadcast(
            PatternSource(fast_config.chunk_size * 4),
            ["n2", "n3"],
            config=fast_config,
        )
        result = bc.run(timeout=30)
        assert result.ok
        assert result.throughput > 0
        assert result.duration > 0
