"""The event-loop data plane (`repro.runtime.evloop`).

Three claims are under test:

* **conformance** — ``data_plane="evloop"`` produces byte-identical sink
  contents, the same milestones, and the same failure handling as the
  threaded reference plane (and as the simulator);
* **kernel path** — pure relays (NullSink, no digest) move payloads with
  ``os.splice`` and never read them into Python, observable through the
  ``splice_*`` perfstats counters;
* **fallback** — with ``os.splice``/``os.sendfile`` forced unavailable
  (the non-Linux configuration) everything still completes via the
  userspace path, including ``SocketStream.send_frame_from_file``.
"""

import dataclasses
import errno
import hashlib
import socket

import pytest

from repro.core import (
    BytesSource,
    FileSource,
    HashingSink,
    PatternSource,
    TraceCollector,
)
from repro.core.messages import Data
from repro.core.perfstats import PerfStats
from repro.core.sinks import NullSink, Sink
from repro.core.tracing import FAILOVER, QUIT
from repro.runtime import CrashPlan, LocalBroadcast
from repro.runtime import evloop, transport
from repro.runtime.evloop import HAS_SPLICE, splice_active
from repro.runtime.transport import SocketStream
from repro.session import run_broadcast


def _evloop_config(fast_config, **overrides):
    return dataclasses.replace(fast_config, data_plane="evloop", **overrides)


def _digest(size, seed=0):
    src = PatternSource(size, seed=seed)
    return hashlib.sha256(src.expected_bytes(0, size)).hexdigest()


def hashing_factory(store):
    def factory(name):
        sink = HashingSink()
        store[name] = sink
        return sink
    return factory


class TestEvloopCleanRuns:
    def test_multi_node_null_sink(self, fast_config):
        """The splice-eligible configuration: relays forward in-kernel."""
        size = fast_config.chunk_size * 32 + 321
        bc = LocalBroadcast(PatternSource(size), ["n2", "n3", "n4"],
                            config=_evloop_config(fast_config))
        result = bc.run(timeout=60)
        assert result.ok, result.outcomes
        assert result.total_bytes == size
        assert all(o.bytes_received == size
                   for o in result.outcomes.values())
        if HAS_SPLICE:
            # Two relays × two pipe legs each, plus the tail's discard
            # legs: every payload byte moved by splice, none by recv.
            assert result.perfstats["splice_syscalls"] > 0
            assert result.perfstats["splice_bytes"] >= 2 * size
        assert result.perfstats["reactor_wakeups"] > 0

    def test_digest_parity_with_threaded_plane(self, fast_config):
        """Storing nodes take the userspace path: stored bytes must be
        identical across planes (and match the source)."""
        size = fast_config.chunk_size * 17 + 99
        digests = {}
        for plane in ("threaded", "evloop"):
            sinks = {}
            bc = LocalBroadcast(
                PatternSource(size, seed=9), ["n2", "n3"],
                sink_factory=hashing_factory(sinks),
                config=dataclasses.replace(fast_config, data_plane=plane),
            )
            result = bc.run(timeout=60)
            assert result.ok, result.outcomes
            digests[plane] = {n: s.hexdigest() for n, s in sinks.items()}
        want = _digest(size, seed=9)
        assert digests["threaded"] == digests["evloop"]
        assert all(d == want for d in digests["evloop"].values())

    def test_session_data_plane_kwarg(self, fast_config):
        result = run_broadcast(BytesSource(b"x" * 10000), ["n2"],
                               config=fast_config, data_plane="evloop",
                               timeout=30)
        assert result.ok
        assert result.total_bytes == 10000

    def test_simnet_rejects_data_plane(self, fast_config):
        from repro.core import KascadeError
        with pytest.raises(KascadeError, match="simnet"):
            run_broadcast(BytesSource(b"x"), ["n2"], backend="simnet",
                          config=fast_config, data_plane="evloop")

    def test_splice_eligibility_rules(self, fast_config):
        assert splice_active(fast_config, NullSink()) == HAS_SPLICE
        # A NullSink *subclass* may observe bytes — must stay userspace.
        class CountingNull(NullSink):
            pass
        assert not splice_active(fast_config, CountingNull())
        assert not splice_active(fast_config, HashingSink())
        hashing_cfg = dataclasses.replace(fast_config, verify_digest=True)
        assert not splice_active(hashing_cfg, NullSink())

    def test_verify_digest_takes_userspace_path(self, fast_config):
        """Integrity mode forces hashing, which forbids splice — the
        plane must still complete with the digest check passing."""
        size = fast_config.chunk_size * 8
        config = _evloop_config(fast_config, verify_digest=True)
        bc = LocalBroadcast(PatternSource(size), ["n2", "n3"], config=config)
        result = bc.run(timeout=60)
        assert result.ok, result.outcomes
        assert result.report.source_digest is not None


class TestForcedFallback:
    def test_evloop_without_splice_or_sendfile(self, fast_config,
                                               monkeypatch, tmp_path):
        """The non-Linux configuration: both kernel paths gated off."""
        monkeypatch.setattr(evloop, "HAS_SPLICE", False)
        monkeypatch.setattr(evloop, "HAS_SENDFILE", False)
        size = fast_config.chunk_size * 12 + 5
        src = PatternSource(size, seed=3)
        payload = src.expected_bytes(0, size)
        path = tmp_path / "in.bin"
        path.write_bytes(payload)
        sinks = {}
        bc = LocalBroadcast(FileSource(path), ["n2", "n3"],
                            sink_factory=hashing_factory(sinks),
                            config=_evloop_config(fast_config))
        result = bc.run(timeout=60)
        assert result.ok, result.outcomes
        assert result.perfstats["splice_syscalls"] == 0
        assert result.perfstats["syscalls_sendfile"] == 0
        want = hashlib.sha256(payload).hexdigest()
        assert all(s.hexdigest() == want for s in sinks.values())

    def test_send_frame_from_file_without_sendfile(self, monkeypatch,
                                                   tmp_path):
        """`HAS_SENDFILE = False` falls back to read + queued send."""
        monkeypatch.setattr(transport, "HAS_SENDFILE", False)
        data = bytes((i * 13) % 256 for i in range(256 * 1024))
        path = tmp_path / "payload.bin"
        path.write_bytes(data)
        a, b = socket.socketpair()
        stats = PerfStats()
        sender = SocketStream(a, stats=stats)
        receiver = SocketStream(b)
        src = FileSource(path)
        off, size = 4096, 64 * 1024
        try:
            sender.send_frame_from_file(Data(off, size), src, off, timeout=5)
            msg, payload = receiver.recv_message(timeout=5)
            assert msg == Data(off, size)
            assert bytes(payload) == data[off: off + size]
            assert stats.syscalls_sendfile == 0
            assert stats.syscalls_send > 0
        finally:
            sender.close()
            receiver.close()
            src.close()


class TestMilestoneParity:
    def test_crash_milestones_agree_across_planes(self, fast_config):
        """One crash scenario, three engines — threaded TCP, evloop TCP,
        and the simulator — must agree on the causal skeleton."""
        size = fast_config.chunk_size * 64
        crash = ("n3", fast_config.chunk_size * 4, "close")
        milestones = {}
        for plane in ("threaded", "evloop"):
            result = run_broadcast(
                PatternSource(size), ["n2", "n3", "n4"],
                config=dataclasses.replace(fast_config, data_plane=plane),
                trace=True, crashes=[crash], timeout=60.0)
            assert result.ok, (plane, result.outcomes)
            failovers = result.trace.of_type(FAILOVER)
            assert [e.peer for e in failovers] == ["n3"], plane
            milestones[plane] = result.trace.milestones("done")
        sim = run_broadcast(PatternSource(size), ["n2", "n3", "n4"],
                            backend="simnet", config=fast_config,
                            trace=True, crashes=[crash])
        assert sim.ok
        assert milestones["threaded"] == milestones["evloop"] == \
            sim.trace.milestones("done") == \
            [("done", "n4"), ("done", "n2"), ("done", "n1")]


class TestStripedParity:
    """Striped broadcast (config.stripes = k) against the single-chain
    reference: the merged stream every host stores must be byte-identical
    to the k = 1 broadcast of the same source, on both data planes."""

    @pytest.mark.parametrize("plane", ["threaded", "evloop"])
    @pytest.mark.parametrize("k", [2, 4])
    def test_digest_parity_across_stripe_counts(self, fast_config, plane, k):
        size = fast_config.chunk_size * 21 + 77
        sinks = {}
        bc = LocalBroadcast(
            PatternSource(size, seed=5), ["n2", "n3", "n4"],
            sink_factory=hashing_factory(sinks),
            config=dataclasses.replace(
                fast_config, data_plane=plane, stripes=k),
        )
        result = bc.run(timeout=60)
        assert result.ok, result.outcomes
        assert result.total_bytes == size
        assert result.plan is not None and result.plan.stripe_count == k
        want = _digest(size, seed=5)
        assert {n: s.hexdigest() for n, s in sinks.items()} == \
            {n: want for n in ("n2", "n3", "n4")}
        # Every host received the whole stream, counted across stripes.
        assert all(result.outcomes[n].bytes_received == size
                   for n in ("n2", "n3", "n4"))

    @pytest.mark.parametrize("plane", ["threaded", "evloop"])
    def test_mid_chain_crash_on_striped_run(self, fast_config, plane):
        """Kill a host mid-transfer on a k = 2 run: every one of its
        stripe chains fails over, and the survivors' *merged* digests
        still match the single-chain broadcast of the same source."""
        size = fast_config.chunk_size * 64
        sinks = {}
        bc = LocalBroadcast(
            PatternSource(size, seed=8), ["n2", "n3", "n4", "n5"],
            sink_factory=hashing_factory(sinks),
            config=dataclasses.replace(
                fast_config, data_plane=plane, stripes=2),
            crashes=[CrashPlan("n3", fast_config.chunk_size * 4, "close")],
        )
        result = bc.run(timeout=60)
        assert result.ok, result.outcomes
        assert not result.outcomes["n3"].ok
        want = _digest(size, seed=8)
        for survivor in ("n2", "n4", "n5"):
            assert result.outcomes[survivor].ok
            assert sinks[survivor].hexdigest() == want, survivor
        # The pooled report names the dead host (once per stripe that
        # detected it), never a survivor.
        assert {f.node for f in result.report.failures} == {"n3"}


class _ENOSPCSink(Sink):
    def __init__(self, capacity):
        self.capacity = capacity
        self.bytes_written = 0
        self.aborted = False

    def write_chunk(self, data):
        if self.bytes_written + len(data) > self.capacity:
            raise OSError(errno.ENOSPC, "No space left on device")
        self.bytes_written += len(data)

    def abort(self):
        self.aborted = True


class TestEvloopFaults:
    @pytest.mark.parametrize("mode", ["close", "silent"])
    def test_spliced_relay_survives_neighbour_crash(self, fast_config, mode):
        """Kernel-path relays reroute around a dead neighbour: the
        replacement refetches the phantom window from the head via PGET."""
        size = fast_config.chunk_size * 64
        config = _evloop_config(fast_config)
        bc = LocalBroadcast(
            PatternSource(size), ["n2", "n3", "n4", "n5"], config=config,
            crashes=[CrashPlan("n3", fast_config.chunk_size * 4, mode)],
        )
        result = bc.run(timeout=60)
        assert result.ok, result.outcomes
        assert not result.outcomes["n3"].ok
        survivors = ("n1", "n2", "n4", "n5")
        assert all(result.outcomes[n].ok for n in survivors)
        assert all(result.outcomes[n].bytes_received == size
                   for n in survivors)
        assert [f.node for f in result.report.failures] == ["n3"]

    def test_userspace_relay_survives_crash_with_digest(self, fast_config):
        size = fast_config.chunk_size * 48
        sinks = {}
        bc = LocalBroadcast(
            PatternSource(size, seed=2), ["n2", "n3", "n4"],
            sink_factory=hashing_factory(sinks),
            config=_evloop_config(fast_config),
            crashes=[CrashPlan("n3", fast_config.chunk_size * 6, "close")],
        )
        result = bc.run(timeout=60)
        assert result.ok, result.outcomes
        want = _digest(size, seed=2)
        for survivor in ("n2", "n4"):
            assert sinks[survivor].hexdigest() == want

    def test_sink_failure_hard_aborts(self, fast_config):
        """ENOSPC mid-chain on the evloop plane: QUIT both neighbours,
        discard the partial output, upstream still completes."""
        config = _evloop_config(fast_config)
        size = config.chunk_size * 64
        tracer = TraceCollector()
        sinks = {}

        def sink_factory(name):
            cap = config.chunk_size * 8 if name == "n3" else size
            sinks[name] = _ENOSPCSink(cap)
            return sinks[name]

        bc = LocalBroadcast(PatternSource(size), ["n2", "n3", "n4"],
                            sink_factory=sink_factory, config=config,
                            tracer=tracer)
        result = bc.run(timeout=60)
        n3 = result.outcomes["n3"]
        assert not n3.ok
        assert "sink failure" in (n3.error or "")
        assert sinks["n3"].aborted
        quits = [e for e in tracer.of_type(QUIT) if e.node == "n3"]
        assert quits and any("sink failure" in e.detail for e in quits)
        assert result.outcomes["n2"].ok
        assert sinks["n2"].bytes_written == size
