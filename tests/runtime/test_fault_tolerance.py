"""Fault-tolerance integration tests over real TCP (§III-D end to end).

These tests kill pipeline nodes mid-transfer and assert that every
*surviving* node still receives a byte-perfect copy, that the failures
appear in the final report, and that the unrecoverable-loss path (FORGET
with a stream source) aborts cleanly instead of deadlocking.
"""

import hashlib
import io

import pytest

from repro.core import HashingSink, KascadeConfig, PatternSource, StreamSource
from repro.runtime import CrashPlan, LocalBroadcast


def hashing_factory(store):
    def factory(name):
        sink = HashingSink()
        store[name] = sink
        return sink
    return factory


def expected_digest(size, seed=0):
    src = PatternSource(size, seed=seed)
    return hashlib.sha256(src.expected_bytes(0, size)).hexdigest()


def run_with_crashes(config, size, receivers, crashes, seed=0, timeout=60):
    sinks = {}
    bc = LocalBroadcast(
        PatternSource(size, seed=seed),
        receivers,
        sink_factory=hashing_factory(sinks),
        config=config,
        crashes=crashes,
    )
    result = bc.run(timeout=timeout)
    return result, sinks


class TestSingleCrash:
    def test_middle_node_close_crash(self, fast_config):
        size = fast_config.chunk_size * 12
        receivers = ["n2", "n3", "n4", "n5"]
        result, sinks = run_with_crashes(
            fast_config, size, receivers,
            [CrashPlan("n3", after_bytes=fast_config.chunk_size * 3)],
        )
        assert result.ok, {n: (o.ok, o.error) for n, o in result.outcomes.items()}
        want = expected_digest(size)
        for name in ("n2", "n4", "n5"):
            assert sinks[name].hexdigest() == want, f"{name} corrupted"
        assert "n3" in result.report.failed_nodes

    def test_crash_detected_by_predecessor(self, fast_config):
        size = fast_config.chunk_size * 10
        result, _ = run_with_crashes(
            fast_config, size, ["n2", "n3", "n4"],
            [CrashPlan("n3", after_bytes=fast_config.chunk_size * 2)],
        )
        assert result.ok
        detectors = {r.detected_by for r in result.report.failures if r.node == "n3"}
        assert "n2" in detectors

    def test_tail_crash(self, fast_config):
        # The last node dies: its predecessor becomes the tail and must
        # perform the ring-closure report duty.
        size = fast_config.chunk_size * 10
        result, sinks = run_with_crashes(
            fast_config, size, ["n2", "n3", "n4"],
            [CrashPlan("n4", after_bytes=fast_config.chunk_size * 2)],
        )
        assert result.ok, {n: (o.ok, o.error) for n, o in result.outcomes.items()}
        want = expected_digest(size)
        assert sinks["n2"].hexdigest() == want
        assert sinks["n3"].hexdigest() == want
        assert result.report.failed_nodes == ["n4"]

    def test_first_receiver_crash(self, fast_config):
        # Head itself must detect and route around its direct neighbour.
        size = fast_config.chunk_size * 10
        result, sinks = run_with_crashes(
            fast_config, size, ["n2", "n3", "n4"],
            [CrashPlan("n2", after_bytes=fast_config.chunk_size * 2)],
        )
        assert result.ok
        want = expected_digest(size)
        assert sinks["n3"].hexdigest() == want
        assert sinks["n4"].hexdigest() == want
        detectors = {r.detected_by for r in result.report.failures if r.node == "n2"}
        assert "n1" in detectors

    def test_silent_crash_detected_by_timeout_and_ping(self, fast_config):
        # The node hangs without closing sockets: only the timeout + ping
        # mechanism of §III-D1 can catch this.
        size = fast_config.chunk_size * 12
        result, sinks = run_with_crashes(
            fast_config, size, ["n2", "n3", "n4"],
            [CrashPlan("n3", after_bytes=fast_config.chunk_size * 3, mode="silent")],
            timeout=90,
        )
        assert result.ok, {n: (o.ok, o.error) for n, o in result.outcomes.items()}
        want = expected_digest(size)
        assert sinks["n2"].hexdigest() == want
        assert sinks["n4"].hexdigest() == want
        assert "n3" in result.report.failed_nodes


class TestMultipleCrashes:
    def test_two_adjacent_crashes(self, fast_config):
        # "in case of multiple adjacent failures nj is not ni+1" (§III-D2)
        size = fast_config.chunk_size * 12
        receivers = ["n2", "n3", "n4", "n5", "n6"]
        result, sinks = run_with_crashes(
            fast_config, size, receivers,
            [
                CrashPlan("n3", after_bytes=fast_config.chunk_size * 3),
                CrashPlan("n4", after_bytes=fast_config.chunk_size * 3),
            ],
            timeout=90,
        )
        assert result.ok, {n: (o.ok, o.error) for n, o in result.outcomes.items()}
        want = expected_digest(size)
        for name in ("n2", "n5", "n6"):
            assert sinks[name].hexdigest() == want
        assert set(result.report.failed_nodes) >= {"n3", "n4"}

    def test_spread_crashes(self, fast_config):
        size = fast_config.chunk_size * 14
        receivers = [f"n{i}" for i in range(2, 10)]
        result, sinks = run_with_crashes(
            fast_config, size, receivers,
            [
                CrashPlan("n3", after_bytes=fast_config.chunk_size * 2),
                CrashPlan("n6", after_bytes=fast_config.chunk_size * 5),
                CrashPlan("n8", after_bytes=fast_config.chunk_size * 8),
            ],
            timeout=120,
        )
        assert result.ok, {n: (o.ok, o.error) for n, o in result.outcomes.items()}
        want = expected_digest(size)
        for name in ("n2", "n4", "n5", "n7", "n9"):
            assert sinks[name].hexdigest() == want
        assert set(result.report.failed_nodes) == {"n3", "n6", "n8"}


class TestDeepRecovery:
    def test_pget_recovery_with_tiny_buffer(self):
        """Force the ring buffer to recycle past the replacement's offset:
        the receiver must PGET the hole from the (file-backed) head."""
        config = KascadeConfig(
            chunk_size=4096,
            buffer_chunks=1,  # almost no replay capacity
            io_timeout=0.25,
            ping_timeout=0.2,
            connect_timeout=0.5,
            report_timeout=8.0,
        )
        size = config.chunk_size * 16
        # n3 dies late; n2 keeps streaming ahead to... nobody until it
        # notices.  With 1 buffered chunk, n4's GET offset is usually far
        # below n2's window, triggering FORGET -> PGET -> resume.
        sinks = {}
        bc = LocalBroadcast(
            PatternSource(size, seed=3),
            ["n2", "n3", "n4"],
            sink_factory=hashing_factory(sinks),
            config=config,
            crashes=[CrashPlan("n3", after_bytes=config.chunk_size * 6)],
        )
        result = bc.run(timeout=90)
        assert result.ok, {n: (o.ok, o.error) for n, o in result.outcomes.items()}
        want = expected_digest(size, seed=3)
        assert sinks["n2"].hexdigest() == want
        assert sinks["n4"].hexdigest() == want

    def test_stream_source_unrecoverable_loss_aborts_cleanly(self):
        """Stream-fed head + recycled buffer: the FORGET path must abort
        the orphaned suffix without deadlock, while upstream nodes finish."""
        config = KascadeConfig(
            chunk_size=4096,
            buffer_chunks=1,
            io_timeout=0.25,
            ping_timeout=0.2,
            connect_timeout=0.5,
            report_timeout=8.0,
        )
        size = config.chunk_size * 16
        data = bytes((i * 13) % 256 for i in range(size))
        sinks = {}
        bc = LocalBroadcast(
            StreamSource(io.BytesIO(data)),
            ["n2", "n3", "n4"],
            sink_factory=hashing_factory(sinks),
            config=config,
            crashes=[CrashPlan("n3", after_bytes=config.chunk_size * 6)],
        )
        result = bc.run(timeout=90)
        # n2 must still complete with correct bytes.
        assert result.outcomes["n2"].ok, result.outcomes["n2"].error
        assert sinks["n2"].hexdigest() == hashlib.sha256(data).hexdigest()
        # n4 either recovered fully (if n2's buffer happened to cover the
        # hole) or aborted cleanly — but never delivered wrong bytes.
        n4 = result.outcomes["n4"]
        if n4.ok:
            assert sinks["n4"].hexdigest() == hashlib.sha256(data).hexdigest()
        else:
            assert n4.bytes_received < size
        # Nothing may hang: the run() call already joined every thread.
        assert not result.outcomes["n4"].crashed
