"""Fault-tolerance integration tests over real TCP (§III-D end to end).

These tests kill pipeline nodes mid-transfer and assert that every
*surviving* node still receives a byte-perfect copy, that the failures
appear in the final report, and that the unrecoverable-loss path (FORGET
with a stream source) aborts cleanly instead of deadlocking.
"""

import hashlib
import io

import pytest

from repro.core import HashingSink, KascadeConfig, PatternSource, StreamSource
from repro.core import tracing
from repro.core.tracing import TraceCollector
from repro.runtime import CrashPlan, LocalBroadcast


def hashing_factory(store):
    def factory(name):
        sink = HashingSink()
        store[name] = sink
        return sink
    return factory


def expected_digest(size, seed=0):
    src = PatternSource(size, seed=seed)
    return hashlib.sha256(src.expected_bytes(0, size)).hexdigest()


def run_with_crashes(config, size, receivers, crashes, seed=0, timeout=60):
    sinks = {}
    bc = LocalBroadcast(
        PatternSource(size, seed=seed),
        receivers,
        sink_factory=hashing_factory(sinks),
        config=config,
        crashes=crashes,
        tracer=TraceCollector(),
    )
    result = bc.run(timeout=timeout)
    return result, sinks


def assert_failover_traced(result, crashed, detector):
    """Every injected crash must surface as a FAILOVER event against the
    crashed node whose detector matches the injection mode."""
    failovers = result.trace.of_type(tracing.FAILOVER)
    against = [e for e in failovers if e.peer == crashed]
    assert against, (
        f"no FAILOVER event for {crashed}: "
        f"{[(e.node, e.peer) for e in failovers]}"
    )
    detectors = {e.detector for e in against}
    assert detector in detectors, (
        f"expected detector {detector!r} for {crashed}, got {detectors} "
        f"({[e.detail for e in against]})"
    )


class TestSingleCrash:
    def test_middle_node_close_crash(self, fast_config):
        size = fast_config.chunk_size * 12
        receivers = ["n2", "n3", "n4", "n5"]
        result, sinks = run_with_crashes(
            fast_config, size, receivers,
            [CrashPlan("n3", after_bytes=fast_config.chunk_size * 3)],
        )
        assert result.ok, {n: (o.ok, o.error) for n, o in result.outcomes.items()}
        want = expected_digest(size)
        for name in ("n2", "n4", "n5"):
            assert sinks[name].hexdigest() == want, f"{name} corrupted"
        assert "n3" in result.report.failed_nodes
        # A close-mode crash is seen as a syscall error, not a ping loss.
        assert_failover_traced(result, "n3", tracing.DETECTOR_ERROR)

    def test_crash_detected_by_predecessor(self, fast_config):
        size = fast_config.chunk_size * 10
        result, _ = run_with_crashes(
            fast_config, size, ["n2", "n3", "n4"],
            [CrashPlan("n3", after_bytes=fast_config.chunk_size * 2)],
        )
        assert result.ok
        detectors = {r.detected_by for r in result.report.failures if r.node == "n3"}
        assert "n2" in detectors
        # The trace tells the same story: n2 emitted the FAILOVER.
        assert any(e.node == "n2" and e.peer == "n3"
                   for e in result.trace.of_type(tracing.FAILOVER))

    def test_tail_crash(self, fast_config):
        # The last node dies: its predecessor becomes the tail and must
        # perform the ring-closure report duty.
        size = fast_config.chunk_size * 10
        result, sinks = run_with_crashes(
            fast_config, size, ["n2", "n3", "n4"],
            [CrashPlan("n4", after_bytes=fast_config.chunk_size * 2)],
        )
        assert result.ok, {n: (o.ok, o.error) for n, o in result.outcomes.items()}
        want = expected_digest(size)
        assert sinks["n2"].hexdigest() == want
        assert sinks["n3"].hexdigest() == want
        assert result.report.failed_nodes == ["n4"]
        assert_failover_traced(result, "n4", tracing.DETECTOR_ERROR)
        # n3 inherited the tail duty: the ring-closure report still ran.
        assert any(e.detail == "ring-closure"
                   for e in result.trace.of_type(tracing.REPORT))

    def test_first_receiver_crash(self, fast_config):
        # Head itself must detect and route around its direct neighbour.
        size = fast_config.chunk_size * 10
        result, sinks = run_with_crashes(
            fast_config, size, ["n2", "n3", "n4"],
            [CrashPlan("n2", after_bytes=fast_config.chunk_size * 2)],
        )
        assert result.ok
        want = expected_digest(size)
        assert sinks["n3"].hexdigest() == want
        assert sinks["n4"].hexdigest() == want
        detectors = {r.detected_by for r in result.report.failures if r.node == "n2"}
        assert "n1" in detectors
        assert_failover_traced(result, "n2", tracing.DETECTOR_ERROR)

    def test_silent_crash_detected_by_timeout_and_ping(self, fast_config):
        # The node hangs without closing sockets: only the timeout + ping
        # mechanism of §III-D1 can catch this.
        size = fast_config.chunk_size * 12
        result, sinks = run_with_crashes(
            fast_config, size, ["n2", "n3", "n4"],
            [CrashPlan("n3", after_bytes=fast_config.chunk_size * 3, mode="silent")],
            timeout=90,
        )
        assert result.ok, {n: (o.ok, o.error) for n, o in result.outcomes.items()}
        want = expected_digest(size)
        assert sinks["n2"].hexdigest() == want
        assert sinks["n4"].hexdigest() == want
        assert "n3" in result.report.failed_nodes
        # Silence is only detectable by the stall -> ping -> no-answer
        # chain, and the trace must attribute it to exactly that.
        assert_failover_traced(result, "n3", tracing.DETECTOR_PING)
        pings = [e for e in result.trace.of_type(tracing.PING)
                 if e.peer == "n3"]
        assert any(e.detail == "unanswered" for e in pings)
        # Causality: the unanswered ping precedes the failover verdict.
        failover_seq = min(e.seq for e in result.trace.of_type(
            tracing.FAILOVER) if e.peer == "n3")
        assert min(e.seq for e in pings) < failover_seq


class TestMultipleCrashes:
    def test_two_adjacent_crashes(self, fast_config):
        # "in case of multiple adjacent failures nj is not ni+1" (§III-D2)
        size = fast_config.chunk_size * 12
        receivers = ["n2", "n3", "n4", "n5", "n6"]
        result, sinks = run_with_crashes(
            fast_config, size, receivers,
            [
                CrashPlan("n3", after_bytes=fast_config.chunk_size * 3),
                CrashPlan("n4", after_bytes=fast_config.chunk_size * 3),
            ],
            timeout=90,
        )
        assert result.ok, {n: (o.ok, o.error) for n, o in result.outcomes.items()}
        want = expected_digest(size)
        for name in ("n2", "n5", "n6"):
            assert sinks[name].hexdigest() == want
        assert set(result.report.failed_nodes) >= {"n3", "n4"}
        # Both adjacent deaths appear in the timeline.
        felled = {e.peer for e in result.trace.of_type(tracing.FAILOVER)}
        assert felled >= {"n3", "n4"}

    def test_spread_crashes(self, fast_config):
        size = fast_config.chunk_size * 14
        receivers = [f"n{i}" for i in range(2, 10)]
        result, sinks = run_with_crashes(
            fast_config, size, receivers,
            [
                CrashPlan("n3", after_bytes=fast_config.chunk_size * 2),
                CrashPlan("n6", after_bytes=fast_config.chunk_size * 5),
                CrashPlan("n8", after_bytes=fast_config.chunk_size * 8),
            ],
            timeout=120,
        )
        assert result.ok, {n: (o.ok, o.error) for n, o in result.outcomes.items()}
        want = expected_digest(size)
        for name in ("n2", "n4", "n5", "n7", "n9"):
            assert sinks[name].hexdigest() == want
        assert set(result.report.failed_nodes) == {"n3", "n6", "n8"}
        felled = {e.peer for e in result.trace.of_type(tracing.FAILOVER)}
        assert felled >= {"n3", "n6", "n8"}


class TestDeepRecovery:
    def test_pget_recovery_with_tiny_buffer(self):
        """Force the ring buffer to recycle past the replacement's offset:
        the receiver must PGET the hole from the (file-backed) head."""
        config = KascadeConfig(
            chunk_size=4096,
            buffer_chunks=1,  # almost no replay capacity
            io_timeout=0.25,
            ping_timeout=0.2,
            connect_timeout=0.5,
            report_timeout=8.0,
        )
        size = config.chunk_size * 16
        # n3 dies late; n2 keeps streaming ahead to... nobody until it
        # notices.  With 1 buffered chunk, n4's GET offset is usually far
        # below n2's window, triggering FORGET -> PGET -> resume.
        sinks = {}
        bc = LocalBroadcast(
            PatternSource(size, seed=3),
            ["n2", "n3", "n4"],
            sink_factory=hashing_factory(sinks),
            config=config,
            crashes=[CrashPlan("n3", after_bytes=config.chunk_size * 6)],
            tracer=TraceCollector(),
        )
        result = bc.run(timeout=90)
        assert result.ok, {n: (o.ok, o.error) for n, o in result.outcomes.items()}
        want = expected_digest(size, seed=3)
        assert sinks["n2"].hexdigest() == want
        assert sinks["n4"].hexdigest() == want
        # The hole fill is on record: n4 received a FORGET, PGETed the
        # missing range from the head, and the head served it — in that
        # order.
        trace = result.trace
        forgets = [e for e in trace.of_type(tracing.FORGET)
                   if e.node == "n4" and e.detail == "received"]
        pgets = [e for e in trace.of_type(tracing.PGET) if e.node == "n4"]
        served = [e for e in trace.of_type(tracing.PGET) if e.node == "n1"]
        assert forgets and pgets and served
        assert pgets[0].peer == "n1"
        assert forgets[0].seq < pgets[0].seq < served[0].seq

    def test_stream_source_unrecoverable_loss_aborts_cleanly(self):
        """Stream-fed head + recycled buffer: the FORGET path must abort
        the orphaned suffix without deadlock, while upstream nodes finish."""
        config = KascadeConfig(
            chunk_size=4096,
            buffer_chunks=1,
            io_timeout=0.25,
            ping_timeout=0.2,
            connect_timeout=0.5,
            report_timeout=8.0,
        )
        size = config.chunk_size * 16
        data = bytes((i * 13) % 256 for i in range(size))
        sinks = {}
        bc = LocalBroadcast(
            StreamSource(io.BytesIO(data)),
            ["n2", "n3", "n4"],
            sink_factory=hashing_factory(sinks),
            config=config,
            crashes=[CrashPlan("n3", after_bytes=config.chunk_size * 6)],
            tracer=TraceCollector(),
        )
        result = bc.run(timeout=90)
        # n2 must still complete with correct bytes.
        assert result.outcomes["n2"].ok, result.outcomes["n2"].error
        assert sinks["n2"].hexdigest() == hashlib.sha256(data).hexdigest()
        # n4 either recovered fully (if n2's buffer happened to cover the
        # hole) or aborted cleanly — but never delivered wrong bytes.
        n4 = result.outcomes["n4"]
        if n4.ok:
            assert sinks["n4"].hexdigest() == hashlib.sha256(data).hexdigest()
        else:
            assert n4.bytes_received < size
            # The abort is chronicled: a FORGET reached n4 (nothing can
            # serve the hole for a stream source) and n4 QUIT after it.
            forgets = [e for e in result.trace.of_type(tracing.FORGET)
                       if e.node == "n4"]
            quits = [e for e in result.trace.of_type(tracing.QUIT)
                     if e.node == "n4"]
            assert forgets and quits
            assert forgets[0].seq < quits[0].seq
        # Nothing may hang: the run() call already joined every thread.
        assert not result.outcomes["n4"].crashed


class TestMachineReadableTimelines:
    """Every fault scenario must leave a JSONL chronicle a tool (or a
    person at 3am) can reconstruct the run from."""

    def test_crash_timeline_exports_and_orders(self, fast_config, tmp_path):
        size = fast_config.chunk_size * 12
        result, _ = run_with_crashes(
            fast_config, size, ["n2", "n3", "n4"],
            [CrashPlan("n3", after_bytes=fast_config.chunk_size * 3)],
        )
        assert result.ok
        out = tmp_path / "crash.jsonl"
        result.trace.to_jsonl(str(out))
        events = TraceCollector.from_jsonl(out.read_text())
        assert len(events) == len(result.trace)
        # Monotone in seq (time can interleave across emitting threads).
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        # The causal chain survives serialization: FAILOVER against n3
        # precedes the survivors' DONEs, and the head finishes last.
        failover = next(e for e in events
                        if e.type == "failover" and e.peer == "n3")
        dones = [e for e in events if e.type == "done"]
        assert all(failover.seq < d.seq for d in dones)
        assert dones[-1].node == "n1"
        assert {d.node for d in dones} == {"n1", "n2", "n4"}

    def test_ring_closure_report_traced(self, fast_config):
        size = fast_config.chunk_size * 6
        result, _ = run_with_crashes(fast_config, size, ["n2", "n3"], [])
        assert result.ok
        reports = result.trace.of_type(tracing.REPORT)
        # Each receiver passes the report upstream; the head closes the
        # ring — and logs it after every receiver's REPORT.
        closure = [e for e in reports if e.detail == "ring-closure"]
        assert [e.node for e in closure] == ["n1"]
        upstream = [e for e in reports if e.detail == "upstream"]
        assert {e.node for e in upstream} == {"n2", "n3"}
        assert max(e.seq for e in upstream) < closure[0].seq

    def test_perfstats_folded_into_result(self, fast_config):
        size = fast_config.chunk_size * 4
        result, _ = run_with_crashes(fast_config, size, ["n2"], [])
        assert result.ok
        assert result.perfstats.get("bytes_sent", 0) >= size
        assert result.perfstats.get("bytes_received", 0) >= size
