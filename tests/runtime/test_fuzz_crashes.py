"""Randomized crash fuzzing against the *real TCP* runtime.

Seeded random pipelines with random crash plans; every surviving node
must hold a byte-perfect copy (SHA-256 against the synthetic source) and
every crashed node must appear in the final report.  Hypothesis is
deliberately not used here — shrinking through real sockets and timers
is slow; seeded numpy randomness keeps each case reproducible.
"""

import hashlib

import numpy as np
import pytest

from repro.core import HashingSink, KascadeConfig, PatternSource
from repro.runtime import CrashPlan, LocalBroadcast

CONFIG = KascadeConfig(
    chunk_size=4096,
    buffer_chunks=4,
    io_timeout=0.25,
    ping_timeout=0.2,
    connect_timeout=0.5,
    report_timeout=8.0,
    verify_digest=True,
)


@pytest.mark.parametrize("seed", range(8))
def test_random_crash_scenarios(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 8))
    size = int(rng.integers(6, 20)) * CONFIG.chunk_size
    receivers = [f"n{i}" for i in range(2, n + 2)]
    n_crashes = int(rng.integers(0, min(3, n - 1) + 1))
    victims = list(rng.choice(receivers, size=n_crashes, replace=False))
    crashes = [
        CrashPlan(
            node=v,
            after_bytes=int(rng.integers(1, max(2, size // CONFIG.chunk_size))
                            ) * CONFIG.chunk_size // 2,
            mode=str(rng.choice(["close", "silent"])),
        )
        for v in victims
    ]

    source = PatternSource(size, seed=seed)
    expected = hashlib.sha256(source.expected_bytes(0, size)).hexdigest()
    sinks = {}

    def sink_factory(name):
        sinks[name] = HashingSink()
        return sinks[name]

    result = LocalBroadcast(
        source, receivers, sink_factory=sink_factory,
        config=CONFIG, crashes=crashes,
    ).run(timeout=120)

    survivors = [r for r in receivers if r not in victims]
    assert result.ok, {
        "seed": seed, "victims": victims,
        "outcomes": {k: (v.ok, v.error) for k, v in result.outcomes.items()},
    }
    for name in survivors:
        assert sinks[name].hexdigest() == expected, (
            f"seed {seed}: {name} delivered corrupted data"
        )
    assert set(result.report.failed_nodes) == set(victims), (
        f"seed {seed}: report {result.report.failed_nodes} != {victims}"
    )
