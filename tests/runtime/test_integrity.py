"""End-to-end digest verification (integrity mode) over real TCP."""

import hashlib

import pytest

from repro.core import KascadeConfig, PatternSource, TransferReport
from repro.core.node_state import NodeTransferState
from repro.core.report import FailureRecord
from repro.runtime import CrashPlan, LocalBroadcast


def verify_config(**kwargs):
    return KascadeConfig(
        chunk_size=4096, buffer_chunks=4,
        io_timeout=0.25, ping_timeout=0.2, connect_timeout=0.5,
        report_timeout=6.0, verify_digest=True, **kwargs,
    )


class TestReportDigestFormat:
    def test_v1_roundtrip_unchanged(self):
        rep = TransferReport([FailureRecord("n2", "n1", 5, "x")])
        raw = rep.encode()
        assert raw[:4] == b"KRPT"
        assert TransferReport.decode(raw).source_digest is None

    def test_v2_roundtrip(self):
        digest = hashlib.sha256(b"stream").digest()
        rep = TransferReport([FailureRecord("n2", "n1", 5, "x")],
                             source_digest=digest)
        raw = rep.encode()
        assert raw[:4] == b"KRP2"
        decoded = TransferReport.decode(raw)
        assert decoded.source_digest == digest
        assert decoded.failures == rep.failures

    def test_merge_preserves_digest(self):
        digest = b"\x01" * 32
        upstream = TransferReport(source_digest=digest)
        local = TransferReport([FailureRecord("n3", "n2", 1, "t")])
        local.merge(upstream)
        assert local.source_digest == digest

    def test_truncated_v2_rejected(self):
        from repro.core import ProtocolError
        rep = TransferReport(source_digest=b"\x02" * 32)
        raw = rep.encode()
        with pytest.raises(ProtocolError):
            TransferReport.decode(raw[:6])


class TestNodeStateDigest:
    def test_digest_disabled_by_default(self):
        state = NodeTransferState("n", KascadeConfig())
        state.on_data(0, b"abc")
        assert state.digest is None
        assert state.verify_against_report() is None

    def test_digest_tracks_stream(self):
        state = NodeTransferState("n", verify_config())
        state.on_data(0, b"hello ")
        state.on_data(6, b"world")
        assert state.digest == hashlib.sha256(b"hello world").digest()

    def test_verify_roundtrip(self):
        head = NodeTransferState("h", verify_config())
        head.on_data(0, b"payload")
        head.attach_source_digest()
        raw = head.report.encode()

        rx = NodeTransferState("r", verify_config())
        rx.on_data(0, b"payload")
        rx.merge_upstream_report(raw)
        assert rx.verify_against_report() is True

    def test_verify_detects_corruption(self):
        head = NodeTransferState("h", verify_config())
        head.on_data(0, b"payload")
        head.attach_source_digest()
        raw = head.report.encode()

        rx = NodeTransferState("r", verify_config())
        rx.on_data(0, b"paiload")  # bit rot
        rx.merge_upstream_report(raw)
        assert rx.verify_against_report() is False


class TestEndToEnd:
    def test_clean_transfer_verifies(self):
        cfg = verify_config()
        size = cfg.chunk_size * 8
        bc = LocalBroadcast(PatternSource(size), ["n2", "n3", "n4"],
                            config=cfg)
        result = bc.run(timeout=30)
        assert result.ok, result.outcomes
        assert result.report.source_digest is not None
        assert not result.report.failures

    def test_verification_survives_failures(self):
        cfg = verify_config()
        size = cfg.chunk_size * 12
        bc = LocalBroadcast(
            PatternSource(size), ["n2", "n3", "n4"],
            config=cfg,
            crashes=[CrashPlan("n3", after_bytes=cfg.chunk_size * 3)],
        )
        result = bc.run(timeout=60)
        assert result.ok, result.outcomes
        # Survivors re-fetched data through recovery and still verified.
        reasons = {r.reason for r in result.report.failures}
        assert not any("digest" in r for r in reasons)

    def test_forged_digest_detected_and_reported(self):
        """Monkeypatch the head to publish a wrong digest: every receiver
        must flag itself and the final report must carry the mismatches."""
        cfg = verify_config()
        size = cfg.chunk_size * 4
        bc = LocalBroadcast(PatternSource(size), ["n2", "n3"], config=cfg)

        from repro.core.node_state import NodeTransferState as NTS
        original = NTS.attach_source_digest

        def forge(self):
            self.report.source_digest = b"\xde\xad" * 16

        NTS.attach_source_digest = forge
        try:
            result = bc.run(timeout=30)
        finally:
            NTS.attach_source_digest = original

        assert not result.ok
        mismatch_nodes = {
            r.node for r in result.report.failures
            if r.reason == "digest-mismatch"
        }
        assert mismatch_nodes == {"n2", "n3"}
        for name in ("n2", "n3"):
            assert not result.outcomes[name].ok
