"""User-interruption (QUIT) path over real TCP: the head stops the
transfer early, the QUIT + report still propagate, and every node
terminates cleanly (§III-C: "After END or QUIT, a report is sent")."""

import dataclasses
import threading
import time

import pytest

from repro.core import BufferSink, KascadeConfig, PatternSource
from repro.core.node_state import Phase
from repro.runtime import LocalBroadcast


class TestUserInterrupt:
    def test_quit_mid_transfer(self, fast_config):
        # A transfer slow enough to interrupt reliably: pace the head so
        # the watcher thread always wins the race against stream end.
        config = dataclasses.replace(fast_config, bandwidth_limit=2 * 2**20)
        size = config.chunk_size * 400
        sinks = {}

        def sink_factory(name):
            sinks[name] = BufferSink()
            return sinks[name]

        bc = LocalBroadcast(
            PatternSource(size), ["n2", "n3", "n4"],
            sink_factory=sink_factory, config=config,
        )

        # Interrupt from a side thread once some data has flowed.
        def interrupter():
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                head = bc.nodes.get("n1")
                if head is not None and head.state.offset > 4 * fast_config.chunk_size:
                    head.request_quit()
                    return
                time.sleep(0.005)

        t = threading.Thread(target=interrupter)
        # bc.nodes is populated inside run(); start watcher first.
        t.start()
        result = bc.run(timeout=60)
        t.join()

        head = bc.nodes["n1"]
        # The transfer was aborted, not completed.
        assert head.state.phase in (Phase.ABORTED, Phase.DONE)
        assert result.total_bytes < size
        # Every node terminated (no thread left running).
        for node in bc.nodes.values():
            assert not node.thread.is_alive()
        # Receivers aborted their sinks but saw identical prefixes.
        prefixes = {sinks[n].getvalue() for n in ("n2", "n3", "n4")}
        # Each receiver got some prefix of the stream; all are prefixes
        # of the longest one.
        longest = max(prefixes, key=len)
        for p in prefixes:
            assert longest.startswith(p)

    def test_quit_before_any_data(self, fast_config):
        bc = LocalBroadcast(
            PatternSource(fast_config.chunk_size * 1000),
            ["n2", "n3"], config=fast_config,
        )

        def interrupter():
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                head = bc.nodes.get("n1")
                if head is not None:
                    head.request_quit()
                    return
                time.sleep(0.001)

        t = threading.Thread(target=interrupter)
        t.start()
        result = bc.run(timeout=60)
        t.join()
        for node in bc.nodes.values():
            assert not node.thread.is_alive()
