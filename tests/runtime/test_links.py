"""Unit tests for the sender-side DownstreamLink against scripted peers.

Each test stands up real listening sockets that play the *receiver* side
of the protocol according to a script, so the link's handshake, replay,
FORGET, rerouting, and PASSED logic is exercised in isolation from the
full node machinery.
"""

import threading

import pytest

from repro.core import (
    Data,
    End,
    Get,
    KascadeConfig,
    Passed,
    Quit,
    Report,
    SourceKind,
)
from repro.core.node_state import NodeTransferState
from repro.core.pipeline import PipelinePlan
from repro.runtime.links import DownstreamLink
from repro.runtime.registry import Registry
from repro.runtime.transport import Address, Listener


CFG = KascadeConfig(
    chunk_size=1024, buffer_chunks=4,
    io_timeout=0.25, ping_timeout=0.2, connect_timeout=0.5,
    report_timeout=5.0,
)


class ScriptedPeer:
    """A listener whose handler runs in a thread; records what it saw."""

    def __init__(self, handler):
        self.listener = Listener()
        self.handler = handler
        self.seen = []
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self):
        try:
            while True:
                kind, stream = self.listener.accept(timeout=5.0)
                done = self.handler(self, kind, stream)
                if done:
                    return
        except (TimeoutError, ConnectionError):
            pass

    @property
    def address(self):
        return self.listener.address

    def close(self):
        self.listener.close()


def make_link(peers, owner="n1"):
    """Link for a pipeline n1 -> n2 -> ... with given peer addresses."""
    names = [owner] + [f"n{i + 2}" for i in range(len(peers))]
    plan = PipelinePlan(head=names[0], receivers=tuple(names[1:]))
    addrs = {owner: Address("127.0.0.1", 1)}  # head address unused
    for name, peer in zip(names[1:], peers):
        addrs[name] = peer.address
    state = NodeTransferState(owner, CFG, source_kind=SourceKind.SEEKABLE_FILE)
    return DownstreamLink(owner, plan, Registry(addrs), CFG, state), state


def normal_receiver(offset=0, collect=None):
    """Handler: GET(offset), consume DATA/END/REPORT, answer PASSED."""

    def handler(peer, kind, stream):
        if kind != b"D":
            stream.close()
            return False
        stream.send_message(Get(offset), timeout=1.0)
        while True:
            msg, payload = stream.recv_message(5.0)
            peer.seen.append((msg, payload))
            if collect is not None:
                collect.append((msg, payload))
            if isinstance(msg, Report):
                stream.send_message(Passed(), timeout=1.0)
                return True

    return handler


class TestHappyFlow:
    def test_stream_and_finish(self):
        seen = []
        peer = ScriptedPeer(normal_receiver(collect=seen))
        link, state = make_link([peer])
        try:
            for i in range(3):
                data = bytes([i]) * 100
                state.on_data(i * 100, data)
                assert link.send_data(i * 100, data)
            state.on_end(300)
            assert link.finish(total=300, quit_first=False) == "passed"
        finally:
            peer.close()
        kinds = [type(m).__name__ for m, _p in seen]
        assert kinds == ["Data", "Data", "Data", "End", "Report"]

    def test_quit_path(self):
        seen = []
        peer = ScriptedPeer(normal_receiver(collect=seen))
        link, state = make_link([peer])
        try:
            state.on_data(0, b"x" * 50)
            assert link.send_data(0, b"x" * 50)
            state.on_quit()
            assert link.finish(total=50, quit_first=True) == "passed"
        finally:
            peer.close()
        kinds = [type(m).__name__ for m, _p in seen]
        assert kinds == ["Data", "Quit", "Report"]


class TestReplay:
    def test_reconnect_replays_from_receiver_offset(self):
        """Second peer GETs from 100: the link must replay [100, 300)."""
        first_conn = {"n": 0}

        def flaky(peer, kind, stream):
            # Accept the data connection, read one DATA, then die.
            if kind != b"D":
                stream.close()
                return False
            stream.send_message(Get(0), timeout=1.0)
            stream.recv_message(5.0)
            stream.close()
            return True

        def resumed(peer, kind, stream):
            if kind != b"D":
                stream.close()
                return False
            stream.send_message(Get(100), timeout=1.0)
            while True:
                msg, payload = stream.recv_message(5.0)
                peer.seen.append((msg, payload))
                if isinstance(msg, Report):
                    stream.send_message(Passed(), timeout=1.0)
                    return True

        peer1 = ScriptedPeer(flaky)
        peer2 = ScriptedPeer(resumed)
        link, state = make_link([peer1, peer2])
        try:
            for i in range(3):
                state.on_data(i * 100, bytes([i]) * 100)
                link.send_data(i * 100, bytes([i]) * 100)
            state.on_end(300)
            assert link.finish(total=300, quit_first=False) == "passed"
        finally:
            peer1.close()
            peer2.close()
        # peer2 must have received exactly [100, 300) then END.
        datas = [(m.offset, m.size) for m, _p in peer2.seen
                 if isinstance(m, Data)]
        assert datas[0][0] == 100
        assert sum(s for _o, s in datas) == 200
        # The failure of n2 is in the report.
        assert "n2" in {r.node for r in state.report.failures}

    def test_connect_refused_marks_dead_and_moves_on(self):
        dead = Listener()
        dead_addr = dead.address
        dead.close()  # nothing listens here any more

        seen = []
        alive = ScriptedPeer(normal_receiver(collect=seen))
        link, state = make_link([alive, alive])  # placeholder, fix below
        # Rebuild with the dead address first.
        plan = PipelinePlan(head="n1", receivers=("n2", "n3"))
        addrs = {
            "n1": Address("127.0.0.1", 1),
            "n2": dead_addr,
            "n3": alive.address,
        }
        state = NodeTransferState("n1", CFG, source_kind=SourceKind.SEEKABLE_FILE)
        link = DownstreamLink("n1", plan, Registry(addrs), CFG, state)
        try:
            state.on_data(0, b"a" * 10)
            assert link.send_data(0, b"a" * 10)
            state.on_end(10)
            assert link.finish(total=10, quit_first=False) == "passed"
        finally:
            alive.close()
        assert link.target is None or link.target == "n3"
        assert "n2" in {r.node for r in state.report.failures}


class TestEffectiveTail:
    def test_all_dead_returns_tail(self):
        dead1, dead2 = Listener(), Listener()
        a1, a2 = dead1.address, dead2.address
        dead1.close()
        dead2.close()
        plan = PipelinePlan(head="n1", receivers=("n2", "n3"))
        addrs = {"n1": Address("127.0.0.1", 1), "n2": a1, "n3": a2}
        state = NodeTransferState("n1", CFG, source_kind=SourceKind.SEEKABLE_FILE)
        link = DownstreamLink("n1", plan, Registry(addrs), CFG, state)
        state.on_data(0, b"a" * 10)
        assert not link.send_data(0, b"a" * 10)
        state.on_end(10)
        assert link.finish(total=10, quit_first=False) == "tail"
        assert link.is_effective_tail

    def test_downstream_quit_makes_tail(self):
        """A receiver that answers QUIT (aborted suffix) is not a failure;
        the link stops without skipping to anyone."""

        def aborter(peer, kind, stream):
            if kind != b"D":
                stream.close()
                return False
            stream.send_message(Quit(), timeout=1.0)
            stream.close()
            return True

        never = ScriptedPeer(
            lambda p, k, s: (s.close(), True)[1]
        )
        quitter = ScriptedPeer(aborter)
        plan = PipelinePlan(head="n1", receivers=("n2", "n3"))
        addrs = {
            "n1": Address("127.0.0.1", 1),
            "n2": quitter.address,
            "n3": never.address,
        }
        state = NodeTransferState("n1", CFG, source_kind=SourceKind.SEEKABLE_FILE)
        link = DownstreamLink("n1", plan, Registry(addrs), CFG, state)
        try:
            state.on_data(0, b"a" * 10)
            assert not link.send_data(0, b"a" * 10)
            assert link.downstream_aborted
            assert link.is_effective_tail
            # No failure recorded: the quit was deliberate.
            assert not state.report.failures
        finally:
            quitter.close()
            never.close()
