"""Robustness: nodes must survive malformed peers and junk connections.

A broadcast daemon listens on the network; anything may connect.  These
tests throw garbage at live nodes mid-transfer and assert the broadcast
still completes byte-perfectly.
"""

import threading
import time

import pytest

from repro.core import HashingSink, PatternSource, Ping
from repro.runtime import LocalBroadcast, connect
from repro.runtime.transport import DATA_CONN, PING_CONN


def run_with_interference(fast_config, interfere, size_chunks=30):
    """Run a broadcast while `interfere(registry)` harasses the nodes."""
    import hashlib
    size = fast_config.chunk_size * size_chunks
    source = PatternSource(size, seed=9)
    expected = hashlib.sha256(source.expected_bytes(0, size)).hexdigest()
    sinks = {}

    def sink_factory(name):
        sinks[name] = HashingSink()
        return sinks[name]

    bc = LocalBroadcast(source, ["n2", "n3", "n4"],
                        sink_factory=sink_factory, config=fast_config)

    stop = threading.Event()

    def harass():
        # Wait until listeners exist.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and not bc.nodes:
            time.sleep(0.005)
        while not stop.is_set() and bc.nodes:
            try:
                interfere(bc)
            except Exception:
                pass
            time.sleep(0.02)

    t = threading.Thread(target=harass)
    t.start()
    try:
        result = bc.run(timeout=60)
    finally:
        stop.set()
        t.join()
    assert result.ok, {k: (v.ok, v.error) for k, v in result.outcomes.items()}
    for name in ("n2", "n3", "n4"):
        assert sinks[name].hexdigest() == expected, f"{name} corrupted"
    return result


def node_address(bc, name):
    return bc.nodes[name].listener.address


class TestJunkConnections:
    def test_bogus_preamble(self, fast_config):
        def interfere(bc):
            stream = connect(node_address(bc, "n3"), b"?", timeout=0.5)
            stream.close()

        run_with_interference(fast_config, interfere)

    def test_connect_and_slam(self, fast_config):
        def interfere(bc):
            stream = connect(node_address(bc, "n2"), DATA_CONN, timeout=0.5)
            stream.close()  # immediately reset

        run_with_interference(fast_config, interfere)

    def test_garbage_bytes_on_data_connection(self, fast_config):
        def interfere(bc):
            stream = connect(node_address(bc, "n4"), DATA_CONN, timeout=0.5)
            stream.send_raw(b"\xff\xfe\xfd" * 64, timeout=0.5)
            stream.close()

        run_with_interference(fast_config, interfere)

    def test_ping_flood(self, fast_config):
        def interfere(bc):
            for name in ("n2", "n3", "n4"):
                stream = connect(node_address(bc, name), PING_CONN,
                                 timeout=0.5)
                stream.send_message(Ping(99), timeout=0.5)
                stream.recv_message(0.5)
                stream.close()

        run_with_interference(fast_config, interfere)

    def test_silent_data_connection_holder(self, fast_config):
        """A peer that opens a data connection and says nothing: the node
        answers GET and waits — but a *newer* legitimate connection must
        still win, and the junk one must not stall the transfer."""
        held = []

        def interfere(bc):
            if len(held) < 2:  # hold a couple open, never speak
                held.append(
                    connect(node_address(bc, "n3"), DATA_CONN, timeout=0.5)
                )

        try:
            run_with_interference(fast_config, interfere)
        finally:
            for s in held:
                s.close()


class TestAcceptorGuards:
    """Connection types a node must refuse: PGET/ring to a non-head."""

    def test_receiver_refuses_pget_and_ring(self, fast_config):
        from repro.core import PGet, Report
        from repro.runtime.transport import PGET_CONN, RING_CONN

        def interfere(bc):
            for kind in (PGET_CONN, RING_CONN):
                stream = connect(node_address(bc, "n2"), kind, timeout=0.5)
                try:
                    # The node must close without serving.
                    stream.send_message(PGet(0, 10), timeout=0.5)
                    stream.recv_message(0.3)
                except (ConnectionError, TimeoutError):
                    pass
                finally:
                    stream.close()

        run_with_interference(fast_config, interfere)

    def test_head_pget_out_of_range_is_safe(self, fast_config):
        from repro.core import PGet
        from repro.runtime.transport import PGET_CONN

        def interfere(bc):
            stream = connect(node_address(bc, "n1"), PGET_CONN, timeout=0.5)
            try:
                # Range far beyond anything produced: the head must
                # reject it without dying.
                stream.send_message(PGet(0, 1 << 40), timeout=0.5)
                stream.recv_message(0.3)
            except (ConnectionError, TimeoutError):
                pass
            finally:
                stream.close()

        run_with_interference(fast_config, interfere)
