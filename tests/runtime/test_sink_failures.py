"""Storage failure injection over real TCP (§III-D failure model).

A node whose local sink dies (ENOSPC, dead ``-O`` command) cannot keep
its §II-A promise of storing what it relays; the model requires it to
hard-abort — QUIT both neighbours — rather than silently forward data it
is no longer persisting.  These tests inject sink failures under both
the background-writeback path and the synchronous path
(``sink_writeback_depth=0``), plus the backpressure behaviour of a disk
slower than the wire.
"""

import dataclasses
import errno
import hashlib

import pytest

from repro.core import (
    FileSink,
    HashingSink,
    PatternSource,
    ThrottledSink,
    TraceCollector,
)
from repro.core.sinks import CommandSink, Sink
from repro.core.tracing import QUIT, STALL
from repro.runtime import LocalBroadcast


class ENOSPCSink(Sink):
    """Accepts ``capacity`` bytes, then fails like a full filesystem."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.bytes_written = 0
        self.aborted = False

    def write_chunk(self, data) -> None:
        if self.bytes_written + len(data) > self.capacity:
            raise OSError(errno.ENOSPC, "No space left on device")
        self.bytes_written += len(data)

    def abort(self) -> None:
        self.aborted = True


@pytest.mark.parametrize("writeback_depth", [0, 8],
                         ids=["sync-sink", "writeback"])
class TestSinkFailureAborts:
    def test_enospc_mid_chain_hard_aborts(self, fast_config, writeback_depth):
        config = dataclasses.replace(
            fast_config, sink_writeback_depth=writeback_depth)
        size = config.chunk_size * 64
        tracer = TraceCollector()
        sinks = {}

        def sink_factory(name):
            # Only the middle node runs out of space.
            cap = config.chunk_size * 8 if name == "n3" else size
            sinks[name] = ENOSPCSink(cap)
            return sinks[name]

        bc = LocalBroadcast(PatternSource(size), ["n2", "n3", "n4"],
                            sink_factory=sink_factory, config=config,
                            tracer=tracer)
        result = bc.run(timeout=60)

        n3 = result.outcomes["n3"]
        assert not n3.ok
        assert "sink failure" in (n3.error or "")
        assert "No space left" in (n3.error or "")
        # §III-D: the failed node discards its partial output...
        assert sinks["n3"].aborted
        # ...and QUITs; the trace must show the deliberate abort.
        quits = [e for e in tracer.of_type(QUIT) if e.node == "n3"]
        assert quits and any("sink failure" in e.detail for e in quits)
        # Upstream of the abort, the transfer still completes: n2 becomes
        # the effective tail and closes the ring.
        assert result.outcomes["n2"].ok
        assert sinks["n2"].bytes_written == size
        # Downstream saw QUIT without a report: it hard-aborts too.
        assert not result.outcomes["n4"].ok

    def test_dead_command_sink_hard_aborts(self, fast_config, writeback_depth):
        config = dataclasses.replace(
            fast_config, sink_writeback_depth=writeback_depth)
        # Enough data that the pipe buffer cannot absorb the stream
        # after the command exits immediately.
        size = config.chunk_size * 512  # 2 MiB at the 4 KiB test chunk
        sinks = {}

        def sink_factory(name):
            if name == "n3":
                sinks[name] = CommandSink("exit 0")
            else:
                sinks[name] = HashingSink()
            return sinks[name]

        bc = LocalBroadcast(PatternSource(size), ["n2", "n3"],
                            sink_factory=sink_factory, config=config)
        result = bc.run(timeout=60)

        n3 = result.outcomes["n3"]
        assert not n3.ok
        assert "sink failure" in (n3.error or "")
        assert "stopped accepting data" in (n3.error or "")
        # The node before the failure still stored the full stream.
        want = hashlib.sha256(
            PatternSource(size).expected_bytes(0, size)).hexdigest()
        assert sinks["n2"].hexdigest() == want


class TestSlowSinkBackpressure:
    def test_backpressure_stalls_but_completes(self, fast_config):
        # A modelled disk much slower than loopback: the writeback queue
        # must fill, stall the relay (observably), and still deliver
        # every byte intact.
        config = dataclasses.replace(fast_config, sink_writeback_depth=2)
        size = config.chunk_size * 192  # 768 KiB at 4 KiB chunks
        tracer = TraceCollector()
        hashers = {}

        def sink_factory(name):
            hashers[name] = HashingSink()
            if name == "n2":
                return ThrottledSink(hashers[name], 2 * 2**20)
            return hashers[name]

        bc = LocalBroadcast(PatternSource(size), ["n2", "n3"],
                            sink_factory=sink_factory, config=config,
                            tracer=tracer)
        result = bc.run(timeout=60)

        assert result.ok, {n: o.error for n, o in result.outcomes.items()}
        want = hashlib.sha256(
            PatternSource(size).expected_bytes(0, size)).hexdigest()
        assert hashers["n2"].hexdigest() == want
        assert hashers["n3"].hexdigest() == want
        # The stall was real and observable: counters + STALL trace.
        assert result.perfstats["sink_stall_s"] > 0
        stalls = [e for e in tracer.of_type(STALL)
                  if e.detail == "sink-writeback"]
        assert stalls and stalls[0].node == "n2"


class TestWritebackParity:
    def test_file_output_identical_with_and_without_writeback(
            self, fast_config, tmp_path):
        size = fast_config.chunk_size * 64
        expected = PatternSource(size).expected_bytes(0, size)
        for depth, tag in ((0, "sync"), (8, "async")):
            config = dataclasses.replace(fast_config,
                                         sink_writeback_depth=depth)
            outdir = tmp_path / tag
            outdir.mkdir()

            def sink_factory(name, outdir=outdir):
                return FileSink(outdir / f"{name}.bin")

            bc = LocalBroadcast(PatternSource(size), ["n2", "n3"],
                                sink_factory=sink_factory, config=config)
            result = bc.run(timeout=60)
            assert result.ok
            for name in ("n2", "n3"):
                assert (outdir / f"{name}.bin").read_bytes() == expected, (
                    f"{tag}/{name} produced different bytes")
