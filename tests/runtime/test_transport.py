"""Tests for the TCP transport layer: preambles, framing over sockets,
timeout behaviour, and stall resumption."""

import socket
import threading

import pytest

from repro.core import Data, Get, NodeFailedError, Ping, Pong
from repro.runtime.transport import (
    DATA_CONN,
    PING_CONN,
    Address,
    Listener,
    SocketStream,
    WriteStalled,
    connect,
)


@pytest.fixture
def listener():
    lst = Listener()
    yield lst
    lst.close()


class TestConnectAndPreamble:
    def test_preamble_delivered(self, listener):
        results = {}

        def server():
            kind, stream = listener.accept(timeout=2.0)
            results["kind"] = kind
            stream.close()

        t = threading.Thread(target=server)
        t.start()
        conn = connect(listener.address, DATA_CONN, timeout=2.0)
        t.join()
        conn.close()
        assert results["kind"] == DATA_CONN

    def test_connect_refused_raises_nodefailed(self):
        # Grab a port and close it so nothing listens there.
        probe = Listener()
        addr = probe.address
        probe.close()
        with pytest.raises(NodeFailedError):
            connect(addr, DATA_CONN, timeout=0.5)

    def test_accept_timeout(self, listener):
        with pytest.raises(TimeoutError):
            listener.accept(timeout=0.05)


class TestMessageExchange:
    def _pair(self, listener):
        out = {}

        def server():
            _, stream = listener.accept(timeout=2.0)
            out["server"] = stream

        t = threading.Thread(target=server)
        t.start()
        client = connect(listener.address, PING_CONN, timeout=2.0)
        t.join()
        return client, out["server"]

    def test_roundtrip_messages(self, listener):
        client, server = self._pair(listener)
        client.send_message(Ping(42), timeout=1.0)
        msg, _ = server.recv_message(timeout=1.0)
        assert msg == Ping(42)
        server.send_message(Pong(42), timeout=1.0)
        msg, _ = client.recv_message(timeout=1.0)
        assert msg == Pong(42)
        client.close()
        server.close()

    def test_data_payload_roundtrip(self, listener):
        client, server = self._pair(listener)
        payload = bytes(range(256)) * 100
        client.send_message(Data(0, len(payload)), payload, timeout=2.0)
        msg, got = server.recv_message(timeout=2.0)
        assert msg == Data(0, len(payload))
        assert got == payload
        client.close()
        server.close()

    def test_recv_timeout_preserves_partial_frame(self, listener):
        client, server = self._pair(listener)
        # Send only a header prefix: recv must time out but not lose bytes.
        from repro.core import encode_header
        raw = encode_header(Get(123))
        client.send_raw(raw[:3], timeout=1.0)
        with pytest.raises(TimeoutError):
            server.recv_message(timeout=0.1)
        client.send_raw(raw[3:], timeout=1.0)
        msg, _ = server.recv_message(timeout=1.0)
        assert msg == Get(123)
        client.close()
        server.close()

    def test_peer_close_raises_connectionerror(self, listener):
        client, server = self._pair(listener)
        client.close()
        with pytest.raises(ConnectionError):
            server.recv_message(timeout=1.0)
        server.close()

    def test_write_stall_and_resume(self, listener):
        client, server = self._pair(listener)
        # Fill the kernel buffers: the peer is not reading.
        big = b"z" * (1 << 20)
        stalled = False
        sent_msgs = 0
        try:
            for _ in range(64):
                client.send_message(Data(sent_msgs, len(big)), big, timeout=0.1)
                sent_msgs += 1
        except WriteStalled:
            stalled = True
        assert stalled, "expected the send to stall against a non-reading peer"
        pending_before = client.pending_bytes
        assert pending_before > 0
        # Server starts reading: flush_pending must resume mid-frame.
        def drain():
            for _ in range(sent_msgs + 1):
                server.recv_message(timeout=5.0)

        t = threading.Thread(target=drain)
        t.start()
        for _ in range(200):
            try:
                client.flush_pending(timeout=0.1)
                break
            except WriteStalled:
                continue
        assert client.pending_bytes == 0
        t.join()
        client.close()
        server.close()
