"""The zero-copy data-plane contract, asserted with perf counters.

Three invariants of the rebuilt runtime data path:

* a relay in the backpressured steady state forwards chunks with **zero**
  userspace payload copies (header bytes excluded) — received by
  ``recv_into`` into a pooled buffer, retained as views, sent vectored;
* a stalled vectored send resumes mid-buffer after ``flush_pending``
  without duplicating or dropping a byte;
* ring-buffer views handed to a recovery replay stay byte-correct while
  the buffer pool recycles segments underneath the stream.
"""

import os
import socket

import pytest

from repro.core import BufferPool, ChunkRingBuffer, FileSource, PerfStats
from repro.core.framing import FrameDecoder, encode_header, header_size
from repro.core.messages import Data, Op
from repro.runtime.transport import HAS_SENDFILE, SocketStream, WriteStalled

CHUNK = 4096


def _pattern(i, size=CHUNK):
    return bytes((i + j) % 251 for j in range(size))


def _drain_exact(sock, n):
    out = bytearray()
    while len(out) < n:
        piece = sock.recv(n - len(out))
        assert piece, "peer closed mid-frame"
        out += piece
    return bytes(out)


class TestSteadyStateRelay:
    def test_zero_payload_copies_per_forwarded_chunk(self):
        """Acceptance: upstream socket → decoder view → ring buffer →
        vectored downstream send, with payload_copy_events == 0."""
        up_w, up_r = socket.socketpair()
        down_w, down_r = socket.socketpair()
        stats = PerfStats()
        upstream = SocketStream(up_r, stats=stats)
        downstream = SocketStream(down_w, stats=stats)
        ring = ChunkRingBuffer(16 * CHUNK)
        n_chunks = 300  # > one pool segment of stream, forcing rotations
        try:
            for i in range(n_chunks):
                payload = _pattern(i)
                up_w.sendall(encode_header(Data(i * CHUNK, CHUNK)) + payload)
                msg, view = upstream.recv_message(timeout=5)
                assert msg == Data(i * CHUNK, CHUNK)
                assert isinstance(view, memoryview)
                ring.append(view)          # retention: no copy
                downstream.send_message(msg, view, timeout=5)
                wire = _drain_exact(down_r, header_size(Op.DATA) + CHUNK)
                assert wire[header_size(Op.DATA):] == payload
            assert stats.payload_copy_events == 0
            assert stats.payload_bytes_copied == 0
            assert stats.frames_decoded == n_chunks
            assert stats.frames_sent == n_chunks
            assert stats.bytes_received == n_chunks * (header_size(Op.DATA) + CHUNK)
        finally:
            upstream.close()
            downstream.close()
            up_w.close()
            down_r.close()

    def test_ring_retention_is_by_reference(self):
        """The ring buffer holds the decoder's views, not copies: the
        replayable window reads back correctly without bytes() detours."""
        ring = ChunkRingBuffer(4 * CHUNK)
        backing = bytearray(_pattern(7))
        view = memoryview(backing)
        ring.append(view)
        (off, piece), = list(ring.iter_chunks_from(0))
        assert off == 0
        # Same underlying buffer — mutate the backing store, see it in
        # the ring (the zero-copy retention contract, used deliberately
        # only by the runtime which never mutates received buffers).
        backing[0] ^= 0xFF
        assert piece[0] == backing[0]


class TestStallResume:
    def test_flush_resumes_mid_buffer_without_loss_or_dup(self):
        """Stall a multi-frame vectored queue, then drain + flush in
        alternation: the peer must observe the exact byte sequence."""
        a, b = socket.socketpair()
        stream = SocketStream(a)
        frames = []
        expected = bytearray()
        for i in range(3):
            payload = _pattern(i, 600 * 1024)
            frames.append((Data(i, len(payload)), payload))
            expected += encode_header(frames[-1][0]) + payload
        try:
            stalled = False
            for msg, payload in frames:
                try:
                    stream.send_message(msg, payload, timeout=0.05)
                except WriteStalled:
                    stalled = True
            assert stalled, "test needs a genuine stall to exercise resume"
            received = bytearray()
            while stream.pending_bytes > 0:
                b.settimeout(5)
                received += b.recv(64 * 1024)
                try:
                    stream.flush_pending(timeout=0.05)
                except WriteStalled:
                    continue
            while len(received) < len(expected):
                received += b.recv(64 * 1024)
            assert stream.pending_bytes == 0
            assert bytes(received) == bytes(expected)
        finally:
            stream.close()
            b.close()


class TestReplayOutlivesRecycling:
    def test_ring_views_stay_correct_while_pool_recycles(self):
        """Stream far past the ring window with a tiny pool: segments are
        recycled (pool_reuses > 0) underneath the stream, yet a recovery
        replay of the retained window is byte-perfect."""
        stats = PerfStats()
        pool = BufferPool(4 * CHUNK, stats=stats)
        dec = FrameDecoder(pool=pool, stats=stats)
        ring = ChunkRingBuffer(8 * CHUNK)
        n_chunks = 64
        for i in range(n_chunks):
            dec.feed(encode_header(Data(i * CHUNK, CHUNK)) + _pattern(i))
            for msg, view in iter(dec):
                ring.append(view)
        assert stats.pool_reuses > 0, "pool never recycled; test is vacuous"
        # Replay the retained window, as a DownstreamLink handshake would.
        start = ring.min_offset
        assert start == (n_chunks - 8) * CHUNK
        replayed = b"".join(
            bytes(piece) for _, piece in ring.iter_chunks_from(start)
        )
        expected = b"".join(_pattern(i) for i in range(n_chunks - 8, n_chunks))
        assert replayed == expected


@pytest.mark.skipif(not HAS_SENDFILE, reason="os.sendfile unavailable")
class TestSendfilePath:
    def test_send_frame_from_file_streams_kernel_side(self, tmp_path):
        data = _pattern(3, 256 * 1024)
        path = tmp_path / "payload.bin"
        path.write_bytes(data)
        a, b = socket.socketpair()
        stats = PerfStats()
        sender = SocketStream(a, stats=stats)
        receiver = SocketStream(b)
        src = FileSource(path)
        off, size = 8192, 64 * 1024
        try:
            # Read the sequential cursor first: positional sendfile must
            # not disturb it.
            head = src.read_chunk(100)
            sender.send_frame_from_file(Data(off, size), src, off, timeout=5)
            msg, payload = receiver.recv_message(timeout=5)
            assert msg == Data(off, size)
            assert bytes(payload) == data[off: off + size]
            assert stats.syscalls_sendfile >= 1
            assert stats.payload_copy_events == 0
            assert src.read_chunk(100) == data[100:200]
            assert head == data[:100]
        finally:
            sender.close()
            receiver.close()
            src.close()
