"""Tests for bounded-buffer backpressure in the fluid fabric."""

import math

import pytest

from repro.simnet.engine import Engine, Timeout
from repro.simnet.fabric import Fabric, StreamSupply
from repro.topology import Network


def star_net(n=4, rate=100.0):
    net = Network()
    net.add_switch("sw")
    for i in range(1, n + 1):
        net.add_host(f"h{i}", nic_rate=rate)
        net.add_link(f"h{i}", "sw", rate, 0.0)
    return net


@pytest.fixture
def env():
    eng = Engine()
    fab = Fabric(eng, star_net())
    return eng, fab


class TestBackpressureBasics:
    def test_sender_stalls_at_capacity_with_no_consumer(self, env):
        eng, fab = env
        consumer = StreamSupply()  # nothing attached: consumption = 0
        s = fab.open_stream("h1", "h2", 1000.0,
                            bp_supply=consumer, bp_capacity=200.0)
        eng.run(until=50.0)
        # Only the buffer capacity could be shipped.
        assert s.delivered == pytest.approx(200.0, abs=1.0)
        assert not s.done

    def test_consumption_releases_backpressure(self, env):
        eng, fab = env
        consumer = StreamSupply()
        s1 = fab.open_stream("h1", "h2", 1000.0,
                             bp_supply=consumer, bp_capacity=200.0)

        def start_forwarding():
            yield Timeout(5.0)
            s2 = fab.open_stream("h2", "h3", 1000.0,
                                 supply=StreamSupply(s1), depth=1)
            consumer.attach(s2)
            yield s2.completed

        eng.spawn(start_forwarding())
        eng.run()
        assert s1.done
        # 200 bytes by t=2 (rate 100), stall until t=5, then both at 100:
        # remaining 800 bytes -> s1 done at t=13.
        assert eng.now == pytest.approx(15.0, rel=0.05)

    def test_slow_consumer_throttles_sender(self, env):
        eng, fab = env
        consumer = StreamSupply()
        s1 = fab.open_stream("h1", "h2", 1000.0,
                             bp_supply=consumer, bp_capacity=100.0)
        s2 = fab.open_stream("h2", "h3", 1000.0, limit=20.0,
                             supply=StreamSupply(s1), depth=1)
        consumer.attach(s2)
        eng.run()
        # Once the 100-byte buffer fills, s1 runs at s2's 20 B/s.
        # s2 finishes 1000 bytes at ~1000/20 = 50 s; s1 a touch earlier.
        assert eng.now == pytest.approx(50.0, rel=0.05)

    def test_unbounded_supply_disables_backpressure(self, env):
        eng, fab = env
        consumer = StreamSupply()
        consumer.mark_unbounded()
        s = fab.open_stream("h1", "h2", 1000.0,
                            bp_supply=consumer, bp_capacity=10.0)
        eng.run()
        assert s.done
        assert eng.now == pytest.approx(10.0, rel=0.01)

    def test_infinite_capacity_is_noop(self, env):
        eng, fab = env
        consumer = StreamSupply()  # zero consumption...
        s = fab.open_stream("h1", "h2", 1000.0,
                            bp_supply=consumer, bp_capacity=math.inf)
        eng.run()
        assert s.done  # ...but infinite buffer: no stall


class TestKascadeBackpressure:
    def _run(self, bp, laggard=True):
        from repro.baselines import KascadeSim, SimSetup
        from repro.core import order_by_hostname
        from repro.topology import build_fat_tree
        net = build_fat_tree(16)
        if laggard:
            net.host("node-8").copy_limit = 30e6
        hosts = order_by_hostname(net.host_names())
        setup = SimSetup(network=net, head=hosts[0],
                         receivers=tuple(hosts[1:]), size=5e8,
                         include_startup=False)
        return KascadeSim(model_backpressure=bp).run(setup)

    def test_upstream_throttled_by_downstream_laggard(self):
        free = self._run(bp=False)
        held = self._run(bp=True)
        # Completion time of the whole broadcast is the same: the laggard
        # gates its suffix either way.
        assert held.data_time == pytest.approx(free.data_time, rel=0.05)
        # But with backpressure, an *upstream* node can no longer finish
        # long before the laggard.
        assert free.finish_times["node-4"] < 0.3 * held.finish_times["node-4"]

    def test_healthy_pipeline_unchanged(self):
        free = self._run(bp=False, laggard=False)
        held = self._run(bp=True, laggard=False)
        assert held.data_time == pytest.approx(free.data_time, rel=0.02)
        assert len(held.completed) == 15
