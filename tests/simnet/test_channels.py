"""Tests for the protocol-exact simulation channels."""

import pytest

from repro.core import Data, Get, Ping
from repro.simnet.channels import (
    ChannelClosed,
    ChannelTimeout,
    SimNetHub,
)
from repro.simnet.engine import Engine, Timeout


def hub_pair():
    eng = Engine()
    hub = SimNetHub(eng, bandwidth=1e6, latency=1e-3)
    listener = hub.register("b")
    hub.register("a")
    return eng, hub, listener


def run_proc(eng, gen):
    proc = eng.spawn(gen)
    eng.run()
    if proc.exc is not None:
        raise proc.exc
    return proc.value


class TestConnect:
    def test_connect_and_exchange(self):
        eng, hub, listener = hub_pair()

        def client():
            end = yield from hub.connect("a", "b", b"D")
            end.send(Get(0))
            msg, _ = yield from end.recv(timeout=1.0)
            return msg

        def server():
            kind, end = yield from listener.accept(timeout=1.0)
            assert kind == b"D"
            msg, _ = yield from end.recv(timeout=1.0)
            assert msg == Get(0)
            end.send(Data(0, 3), b"abc")

        eng.spawn(server())
        p = eng.spawn(client())
        eng.run()
        assert p.value == Data(0, 3)

    def test_connect_refused_when_dead(self):
        eng, hub, _listener = hub_pair()
        hub.kill("b")

        def client():
            try:
                yield from hub.connect("a", "b", b"D")
            except ChannelClosed:
                return "refused"

        assert run_proc(eng, client()) == "refused"

    def test_connect_unknown_refused(self):
        eng, hub, _ = hub_pair()

        def client():
            try:
                yield from hub.connect("a", "ghost", b"D")
            except ChannelClosed:
                return "refused"

        assert run_proc(eng, client()) == "refused"

    def test_accept_timeout(self):
        eng, _hub, listener = hub_pair()

        def server():
            try:
                yield from listener.accept(timeout=0.5)
            except ChannelTimeout:
                return eng.now

        assert run_proc(eng, server()) == pytest.approx(0.5)


class TestDelivery:
    def test_in_order_with_service_time(self):
        eng, hub, listener = hub_pair()
        times = []

        def client():
            end = yield from hub.connect("a", "b", b"D")
            payload = b"x" * 1000
            for i in range(3):
                end.send(Data(i, len(payload)), payload)

        def server():
            _kind, end = yield from listener.accept(timeout=1.0)
            for i in range(3):
                msg, _ = yield from end.recv(timeout=5.0)
                assert msg.offset == i
                times.append(eng.now)

        eng.spawn(client())
        eng.spawn(server())
        eng.run()
        # ~1 ms per KB at 1 MB/s, serialized.
        assert times == sorted(times)
        assert times[1] - times[0] == pytest.approx(1032 / 1e6, rel=0.05)

    def test_recv_timeout(self):
        eng, hub, listener = hub_pair()

        def client():
            end = yield from hub.connect("a", "b", b"D")
            try:
                yield from end.recv(timeout=0.2)
            except ChannelTimeout:
                return "timeout"

        eng.spawn(listener.accept(timeout=1.0))
        assert run_proc(eng, client()) == "timeout"

    def test_close_seen_by_peer(self):
        eng, hub, listener = hub_pair()

        def client():
            end = yield from hub.connect("a", "b", b"D")
            end.close()

        def server():
            _kind, end = yield from listener.accept(timeout=1.0)
            try:
                yield from end.recv(timeout=5.0)
            except ChannelClosed:
                return "closed"

        eng.spawn(client())
        p = eng.spawn(server())
        eng.run()
        assert p.value == "closed"


class TestFlowControl:
    def test_send_wait_blocks_on_full_window(self):
        eng, hub, listener = hub_pair()
        sent_times = []

        def client():
            end = yield from hub.connect("a", "b", b"D")
            chunk = b"z" * 300_000
            for i in range(4):
                yield from end.send_wait(Data(i, len(chunk)), chunk)
                sent_times.append(eng.now)

        def server():
            _kind, end = yield from listener.accept(timeout=1.0)
            # A slow reader: one message per second.
            for _ in range(4):
                yield Timeout(1.0)
                yield from end.recv(timeout=10.0)

        eng.spawn(client())
        eng.spawn(server())
        eng.run()
        # First sends fit the 512 KB window; later ones pace at ~1/s.
        assert sent_times[-1] > 1.5

    def test_send_wait_timeout_on_stalled_peer(self):
        eng, hub, listener = hub_pair()

        def client():
            end = yield from hub.connect("a", "b", b"D")
            chunk = b"z" * 400_000
            try:
                for i in range(10):
                    yield from end.send_wait(Data(i, len(chunk)), chunk,
                                             timeout=0.5)
            except ChannelTimeout:
                return ("stalled", eng.now)

        def server():
            _kind, _end = yield from listener.accept(timeout=1.0)
            yield Timeout(100.0)  # never reads

        eng.spawn(server())
        p = eng.spawn(client())
        eng.run(until=50.0)
        assert p.value[0] == "stalled"
        assert p.value[1] < 5.0

    def test_send_wait_resumes_after_drain(self):
        eng, hub, listener = hub_pair()

        def client():
            end = yield from hub.connect("a", "b", b"D")
            chunk = b"z" * 400_000
            for i in range(3):
                yield from end.send_wait(Data(i, len(chunk)), chunk,
                                         timeout=10.0)
            return eng.now

        def server():
            _kind, end = yield from listener.accept(timeout=1.0)
            for _ in range(3):
                yield from end.recv(timeout=20.0)

        eng.spawn(server())
        p = eng.spawn(client())
        eng.run()
        assert p.value is not None


class TestFailure:
    def test_kill_resets_channels(self):
        eng, hub, listener = hub_pair()

        def client():
            end = yield from hub.connect("a", "b", b"D")
            yield Timeout(1.0)
            try:
                yield from end.recv(timeout=5.0)
            except ChannelClosed:
                return "reset"

        def killer():
            yield Timeout(0.5)
            hub.kill("b")

        eng.spawn(listener.accept(timeout=1.0))
        eng.spawn(killer())
        p = eng.spawn(client())
        eng.run()
        assert p.value == "reset"

    def test_silent_kill_keeps_channels(self):
        eng, hub, listener = hub_pair()

        def client():
            end = yield from hub.connect("a", "b", b"D")
            hub.kill_silent("b")
            end.send(Ping(1))  # succeeds: the socket is still "open"
            try:
                yield from end.recv(timeout=0.5)
            except ChannelTimeout:
                return "silent"

        eng.spawn(listener.accept(timeout=1.0))
        assert run_proc(eng, client()) == "silent"

    def test_send_after_kill_raises(self):
        eng, hub, listener = hub_pair()

        def client():
            end = yield from hub.connect("a", "b", b"D")
            yield Timeout(0.1)
            hub.kill("b")
            try:
                end.send(Ping(1))
            except ChannelClosed:
                return "dead"

        eng.spawn(listener.accept(timeout=1.0))
        assert run_proc(eng, client()) == "dead"
