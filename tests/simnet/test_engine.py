"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.core import SimulationError
from repro.simnet.engine import TIME_EPS, Engine, Event, Interrupted, Timeout


class TestScheduling:
    def test_call_at_order(self):
        eng = Engine()
        log = []
        eng.call_at(2.0, lambda: log.append("b"))
        eng.call_at(1.0, lambda: log.append("a"))
        eng.call_at(3.0, lambda: log.append("c"))
        assert eng.run() == 3.0
        assert log == ["a", "b", "c"]

    def test_same_time_fifo(self):
        eng = Engine()
        log = []
        for i in range(5):
            eng.call_at(1.0, lambda i=i: log.append(i))
        eng.run()
        assert log == [0, 1, 2, 3, 4]

    def test_cannot_schedule_in_past(self):
        eng = Engine()
        eng.call_at(5.0, lambda: eng.call_at(1.0, lambda: None))
        with pytest.raises(SimulationError):
            eng.run()

    def test_run_until(self):
        eng = Engine()
        log = []
        eng.call_at(1.0, lambda: log.append(1))
        eng.call_at(10.0, lambda: log.append(10))
        assert eng.run(until=5.0) == 5.0
        assert log == [1]
        assert eng.run() == 10.0
        assert log == [1, 10]

    def test_empty_run(self):
        assert Engine().run() == 0.0


class TestCancellation:
    def test_cancelled_callback_never_fires(self):
        eng = Engine()
        log = []
        seqs = [eng.call_at(float(i), lambda i=i: log.append(i))
                for i in range(10)]
        for seq in seqs[::2]:
            eng._cancel_timeout(seq)
        eng.run()
        assert log == [1, 3, 5, 7, 9]

    def test_pending_events_is_live_count(self):
        eng = Engine()
        seqs = [eng.call_at(float(i), lambda: None) for i in range(20)]
        assert eng.pending_events == 20
        for seq in seqs[:5]:
            eng._cancel_timeout(seq)
        assert eng.pending_events == 15

    def test_mass_cancellation_compacts_heap(self):
        # Cancelling more than half the queue rebuilds the heap in one
        # pass, so neither structure can grow without bound.
        eng = Engine()
        seqs = [eng.call_at(float(i), lambda: None) for i in range(100)]
        for seq in seqs[:60]:
            eng._cancel_timeout(seq)
        # Compaction fired at least once along the way: the heap no
        # longer carries all 60 tombstones, and the set stays bounded by
        # half the heap.
        assert len(eng._heap) < 100
        assert len(eng._cancelled) <= len(eng._heap) // 2
        assert eng.pending_events == 40
        eng.run()
        assert eng.pending_events == 0

    def test_run_until_does_not_leak_cancelled_tokens(self):
        # Tokens for events beyond ``until`` used to linger in _cancelled
        # forever; compaction now clears them.
        eng = Engine()
        log = []
        eng.call_at(1.0, lambda: log.append("early"))
        late = [eng.call_at(100.0 + i, lambda i=i: log.append(i))
                for i in range(10)]
        eng.run(until=5.0)
        assert log == ["early"]
        for seq in late:
            eng._cancel_timeout(seq)
        assert eng.pending_events == 0
        assert not eng._cancelled  # compacted away, not retained forever
        assert eng.run() == 5.0
        assert log == ["early"]

    def test_compaction_preserves_order(self):
        eng = Engine()
        log = []
        keep, drop = [], []
        for i in range(30):
            seq = eng.call_at(float(30 - i), lambda i=i: log.append(30 - i))
            (keep if i % 3 == 0 else drop).append(seq)
        for seq in drop:
            eng._cancel_timeout(seq)
        eng.run()
        assert log == sorted(log)
        assert len(log) == len(keep)


class TestProcesses:
    def test_simple_timeout(self):
        eng = Engine()

        def worker():
            yield Timeout(1.5)
            yield Timeout(2.5)
            return eng.now

        p = eng.spawn(worker())
        eng.run()
        assert p.done
        assert p.value == 4.0

    def test_wait_on_event(self):
        eng = Engine()
        ev = eng.event()

        def waiter():
            value = yield ev
            return value

        def trigger():
            yield Timeout(3.0)
            ev.succeed("payload")

        p = eng.spawn(waiter())
        eng.spawn(trigger())
        eng.run()
        assert p.value == "payload"

    def test_wait_on_already_triggered_event(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed(7)

        def waiter():
            value = yield ev
            return value

        p = eng.spawn(waiter())
        eng.run()
        assert p.value == 7

    def test_multiple_waiters(self):
        eng = Engine()
        ev = eng.event()
        results = []

        def waiter(i):
            value = yield ev
            results.append((i, value))

        for i in range(3):
            eng.spawn(waiter(i))
        eng.call_at(1.0, lambda: ev.succeed("x"))
        eng.run()
        assert sorted(results) == [(0, "x"), (1, "x"), (2, "x")]

    def test_wait_on_process(self):
        eng = Engine()

        def inner():
            yield Timeout(2.0)
            return 42

        def outer():
            value = yield eng.spawn(inner())
            return (eng.now, value)

        p = eng.spawn(outer())
        eng.run()
        assert p.value == (2.0, 42)

    def test_event_failure_propagates(self):
        eng = Engine()
        ev = eng.event()

        def waiter():
            try:
                yield ev
            except RuntimeError as exc:
                return f"caught {exc}"

        p = eng.spawn(waiter())
        eng.call_at(1.0, lambda: ev.fail(RuntimeError("boom")))
        eng.run()
        assert p.value == "caught boom"

    def test_process_exception_reaches_completion_waiter(self):
        eng = Engine()

        def bad():
            yield Timeout(1.0)
            raise ValueError("nope")

        def outer():
            try:
                yield eng.spawn(bad())
            except ValueError as exc:
                return f"saw {exc}"

        p = eng.spawn(outer())
        eng.run()
        assert p.value == "saw nope"

    def test_unwaited_exception_raises(self):
        eng = Engine()

        def bad():
            yield Timeout(1.0)
            raise ValueError("unhandled")

        eng.spawn(bad())
        with pytest.raises(SimulationError):
            eng.run()

    def test_yield_garbage_rejected(self):
        eng = Engine()

        def bad():
            yield "not a waitable"

        eng.spawn(bad())
        with pytest.raises(SimulationError):
            eng.run()


class TestInterrupts:
    def test_interrupt_during_timeout(self):
        eng = Engine()

        def sleeper():
            try:
                yield Timeout(100.0)
            except Interrupted:
                return eng.now

        p = eng.spawn(sleeper())
        eng.call_at(2.0, p.interrupt)
        eng.run()
        assert p.value == 2.0

    def test_interrupt_removes_stale_timer(self):
        # After interruption, the original timeout must NOT fire later.
        eng = Engine()
        resumed_twice = []

        def sleeper():
            try:
                yield Timeout(5.0)
            except Interrupted:
                pass
            yield Timeout(100.0)
            resumed_twice.append(True)

        p = eng.spawn(sleeper())
        eng.call_at(1.0, p.interrupt)
        eng.run(until=50.0)
        assert not resumed_twice  # the 5.0 timer must not resume the 100.0 wait

    def test_interrupt_during_event_wait(self):
        eng = Engine()
        ev = eng.event()

        def waiter():
            try:
                yield ev
            except Interrupted:
                return "interrupted"

        p = eng.spawn(waiter())
        eng.call_at(1.0, p.interrupt)
        eng.run()
        assert p.value == "interrupted"
        # the event can still trigger without resuming the dead waiter
        ev.succeed(1)

    def test_uncaught_interrupt_kills_quietly(self):
        eng = Engine()

        def sleeper():
            yield Timeout(100.0)

        p = eng.spawn(sleeper())
        eng.call_at(1.0, p.interrupt)
        eng.run()
        assert p.done

    def test_kill(self):
        eng = Engine()
        log = []

        def worker():
            log.append("start")
            yield Timeout(10.0)
            log.append("never")

        p = eng.spawn(worker())
        eng.call_at(1.0, p.kill)
        eng.run()
        assert log == ["start"]
        assert p.done

    def test_custom_interrupt_exception(self):
        eng = Engine()

        def waiter():
            try:
                yield Timeout(10.0)
            except ConnectionError as exc:
                return str(exc)

        p = eng.spawn(waiter())
        eng.call_at(1.0, lambda: p.interrupt(ConnectionError("host died")))
        eng.run()
        assert p.value == "host died"


class TestDeterminism:
    def test_identical_runs(self):
        def build():
            eng = Engine()
            log = []

            def worker(i):
                for k in range(3):
                    yield Timeout(0.5 * (i + 1))
                    log.append((eng.now, i, k))

            for i in range(4):
                eng.spawn(worker(i))
            eng.run()
            return log

        assert build() == build()


class TestTimeEpsilon:
    """One named tolerance governs every "is this in the past?" check."""

    def test_schedule_exactly_at_now(self):
        eng = Engine()
        log = []

        def at_five():
            eng.call_at(eng.now, lambda: log.append("same-instant"))
            log.append("first")

        eng.call_at(5.0, at_five)
        assert eng.run() == 5.0
        assert log == ["first", "same-instant"]

    def test_float_drifted_target_is_treated_as_now(self):
        # A target computed as now - eps/2 (accumulated float drift) must
        # run immediately in FIFO order, not raise, and must not move the
        # clock backwards.
        eng = Engine()
        log = []

        def at_five():
            eng.call_at(eng.now - TIME_EPS / 2, lambda: log.append("drift"))
            eng.call_at(eng.now, lambda: log.append("exact"))

        eng.call_at(5.0, at_five)
        assert eng.run() == 5.0
        assert log == ["drift", "exact"]

    def test_beyond_epsilon_past_is_rejected(self):
        eng = Engine()
        eng.call_at(5.0, lambda: eng.call_at(5.0 - 10 * TIME_EPS,
                                             lambda: None))
        with pytest.raises(SimulationError):
            eng.run()


class TestSupervisorHook:
    """``Process.on_error`` absorbs failures without a wrapper generator."""

    def test_handler_absorbs_exception(self):
        eng = Engine()
        seen = []

        def boom():
            yield Timeout(1.0)
            raise ValueError("expected")

        proc = eng.spawn(boom())
        proc.on_error = lambda exc: (seen.append(str(exc)), True)[1]
        eng.run()
        assert seen == ["expected"]
        assert proc.done and proc.exc is None

    def test_handler_declining_reraises(self):
        eng = Engine()

        def boom():
            yield Timeout(1.0)
            raise ValueError("expected")

        proc = eng.spawn(boom())
        proc.on_error = lambda exc: False
        with pytest.raises(SimulationError, match="expected"):
            eng.run()

    def test_handler_resolves_completion_waiters(self):
        eng = Engine()

        def boom():
            yield Timeout(1.0)
            raise ValueError("expected")

        def waiter(proc):
            value = yield proc
            assert value is None

        proc = eng.spawn(boom())
        proc.on_error = lambda exc: True
        eng.spawn(waiter(proc))
        eng.run()
        assert proc.done
