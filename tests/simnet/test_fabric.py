"""Tests for the fluid stream fabric: rates, coupling, thresholds, death."""

import math

import pytest

from repro.core.units import GIGABIT
from repro.simnet.engine import Engine, Timeout
from repro.simnet.fabric import Fabric, FixedSupply, HostDied, StreamSupply
from repro.topology import Network, build_fat_tree, build_single_switch


def star_net(n=4, rate=100.0, copy_bw=math.inf):
    """n hosts named h1..hn on one switch, link rate in bytes/s."""
    net = Network()
    net.add_switch("sw")
    for i in range(1, n + 1):
        net.add_host(f"h{i}", nic_rate=rate, copy_bw=copy_bw)
        net.add_link(f"h{i}", "sw", rate, 0.0)
    return net


def make(n=4, rate=100.0, copy_bw=math.inf):
    eng = Engine()
    fab = Fabric(eng, star_net(n, rate, copy_bw))
    return eng, fab


class TestSingleStream:
    def test_completion_time(self):
        eng, fab = make()
        s = fab.open_stream("h1", "h2", 1000.0)
        eng.run()
        assert s.done
        assert eng.now == pytest.approx(10.0)  # 1000 bytes / 100 B/s

    def test_zero_length_completes_immediately(self):
        eng, fab = make()
        s = fab.open_stream("h1", "h2", 0.0)
        assert s.done
        eng.run()
        assert eng.now == 0.0

    def test_rate_visible(self):
        eng, fab = make()
        s = fab.open_stream("h1", "h2", 1000.0)
        fab.settle()
        assert s.effective_rate == pytest.approx(100.0)
        eng.run()

    def test_limit_respected(self):
        eng, fab = make()
        fab.open_stream("h1", "h2", 1000.0, limit=10.0)
        assert eng.run() == pytest.approx(100.0)

    def test_tcp_window_cap(self):
        net = Network()
        net.add_switch("sw")
        for h in ("a", "b"):
            net.add_host(h)
            net.add_link(h, "sw", 1e9, 8e-3)  # 16 ms one-way -> 32 ms RTT
        eng = Engine()
        fab = Fabric(eng, net)
        s = fab.open_stream("a", "b", 1e6, tcp_window=1e5)
        fab.settle()
        # window/RTT = 1e5 / 0.032 = 3.125e6 B/s
        assert s.effective_rate == pytest.approx(1e5 / 0.032)
        eng.run()


class TestSharing:
    def test_two_streams_same_egress_link(self):
        eng, fab = make()
        a = fab.open_stream("h1", "h2", 1000.0)
        b = fab.open_stream("h1", "h3", 1000.0)
        fab.settle()
        assert a.effective_rate == pytest.approx(50.0)
        assert b.effective_rate == pytest.approx(50.0)
        eng.run()
        assert eng.now == pytest.approx(20.0)

    def test_disjoint_streams_full_rate(self):
        eng, fab = make()
        a = fab.open_stream("h1", "h2", 1000.0)
        b = fab.open_stream("h3", "h4", 1000.0)
        fab.settle()
        assert a.effective_rate == pytest.approx(100.0)
        assert b.effective_rate == pytest.approx(100.0)

    def test_rate_rises_after_completion(self):
        eng, fab = make()
        fab.open_stream("h1", "h2", 100.0)   # done at t=2 (sharing 50/50)
        b = fab.open_stream("h1", "h3", 1000.0)
        eng.run()
        # b: 100 bytes at 50 B/s (2 s), then 900 bytes at 100 B/s (9 s)
        assert eng.now == pytest.approx(11.0)

    def test_copy_budget_halves_relay(self):
        eng, fab = make(copy_bw=60.0)
        # h2 receives and sends simultaneously: both consume h2's copy.
        a = fab.open_stream("h1", "h2", 300.0)
        b = fab.open_stream("h2", "h3", 300.0)
        fab.settle()
        assert a.effective_rate == pytest.approx(30.0)
        assert b.effective_rate == pytest.approx(30.0)


class TestCoupling:
    def test_pipeline_runs_at_bottleneck(self):
        eng, fab = make()
        s1 = fab.open_stream("h1", "h2", 1000.0, limit=40.0, depth=0)
        sup = StreamSupply(s1)
        s2 = fab.open_stream("h2", "h3", 1000.0, supply=sup, depth=1)
        eng.run()
        # hop2 can never outrun hop1's 40 B/s.
        assert eng.now == pytest.approx(1000.0 / 40.0, rel=1e-3)
        assert s2.done

    def test_backlog_lets_downstream_catch_up(self):
        eng, fab = make()
        s1 = fab.open_stream("h1", "h2", 1000.0, depth=0)

        done = {}

        def starter():
            # Let hop 1 build 500 bytes of backlog, then start hop 2.
            yield s1.when_delivered(500.0)
            sup = StreamSupply(s1)
            s2 = fab.open_stream("h2", "h3", 1000.0, supply=sup, depth=1)
            yield s2.completed
            done["t"] = eng.now

        eng.spawn(starter())
        eng.run()
        # hop2 starts at t=5 with 500 backlog; both run at 100; hop2
        # finishes 1000 bytes at t=15 (it drains backlog while supply live).
        assert done["t"] == pytest.approx(15.0, rel=1e-3)

    def test_fixed_supply_caps_position(self):
        eng, fab = make()
        sup = FixedSupply(600.0)
        s = fab.open_stream("h1", "h2", 1000.0, supply=sup, depth=1)
        eng.run(until=100.0)
        # only 600 bytes available, rate drops to 0 at the supply edge
        assert s.delivered == pytest.approx(600.0, abs=1.0)
        assert not s.done

    def test_three_hop_chain(self):
        eng, fab = make(n=4)
        s1 = fab.open_stream("h1", "h2", 1000.0, limit=25.0, depth=0)
        s2 = fab.open_stream("h2", "h3", 1000.0, supply=StreamSupply(s1), depth=1)
        s3 = fab.open_stream("h3", "h4", 1000.0, supply=StreamSupply(s2), depth=2)
        eng.run()
        assert s3.done
        assert eng.now == pytest.approx(40.0, rel=1e-3)


class TestThresholds:
    def test_when_delivered(self):
        eng, fab = make()
        s = fab.open_stream("h1", "h2", 1000.0)
        hits = []

        def waiter():
            yield s.when_delivered(250.0)
            hits.append(eng.now)
            yield s.when_delivered(750.0)
            hits.append(eng.now)

        eng.spawn(waiter())
        eng.run()
        assert hits == [pytest.approx(2.5), pytest.approx(7.5)]

    def test_threshold_already_met(self):
        eng, fab = make()
        s = fab.open_stream("h1", "h2", 1000.0)
        eng.run(until=5.0)
        ev = s.when_delivered(100.0)
        assert ev.triggered

    def test_offset0_accounting(self):
        eng, fab = make()
        s = fab.open_stream("h1", "h2", 500.0, offset0=500.0)
        ev = s.when_delivered(700.0)  # absolute offset

        ts = {}

        def waiter():
            yield ev
            ts["t"] = eng.now

        eng.spawn(waiter())
        eng.run()
        assert ts["t"] == pytest.approx(2.0)  # 200 bytes at 100 B/s
        assert s.head == pytest.approx(1000.0)


class TestMulticast:
    def test_rate_is_min_over_receivers(self):
        eng, fab = make(n=4)
        s = fab.open_stream("h1", ["h2", "h3", "h4"], 1000.0)
        fab.settle()
        assert s.effective_rate == pytest.approx(100.0)
        eng.run()
        assert eng.now == pytest.approx(10.0)

    def test_slow_receiver_drags_group(self):
        net = star_net(4, rate=100.0)
        # h4 has a slow NIC.
        net2 = Network()
        net2.add_switch("sw")
        for i, rate in ((1, 100.0), (2, 100.0), (3, 100.0), (4, 20.0)):
            net2.add_host(f"h{i}", nic_rate=rate)
            net2.add_link(f"h{i}", "sw", rate, 0.0)
        eng = Engine()
        fab = Fabric(eng, net2)
        s = fab.open_stream("h1", ["h2", "h3", "h4"], 1000.0)
        fab.settle()
        assert s.effective_rate == pytest.approx(20.0)

    def test_remove_dst_releases_constraint(self):
        eng, fab = make(n=4)
        s = fab.open_stream("h1", ["h2", "h3"], 1000.0, limit=50.0)
        s.remove_dst("h3")
        assert s.dsts == ("h2",)
        eng.run()
        assert s.done


class TestHostDeath:
    def test_kill_dst_fails_stream(self):
        eng, fab = make()
        s = fab.open_stream("h1", "h2", 1000.0)
        outcome = {}

        def watcher():
            try:
                yield s.completed
            except HostDied as exc:
                outcome["exc"] = exc
                outcome["t"] = eng.now

        eng.spawn(watcher())
        eng.call_at(3.0, lambda: fab.kill_host("h2"))
        eng.run()
        assert outcome["exc"].host == "h2"
        assert outcome["t"] == pytest.approx(3.0)
        assert s.delivered == pytest.approx(300.0, abs=1.0)

    def test_kill_src_fails_stream(self):
        eng, fab = make()
        s = fab.open_stream("h1", "h2", 1000.0)
        eng.call_at(3.0, lambda: fab.kill_host("h1"))
        eng.run()
        assert isinstance(s.failed, HostDied)

    def test_open_to_dead_host_raises(self):
        eng, fab = make()
        fab.kill_host("h3")
        with pytest.raises(HostDied):
            fab.open_stream("h1", "h3", 10.0)

    def test_multicast_dst_death_drops_member(self):
        eng, fab = make(n=4)
        s = fab.open_stream("h1", ["h2", "h3"], 1000.0)
        eng.call_at(1.0, lambda: fab.kill_host("h3"))
        eng.run()
        assert s.done
        assert s.dsts == ("h2",)

    def test_pending_threshold_fails_on_death(self):
        eng, fab = make()
        s = fab.open_stream("h1", "h2", 1000.0)
        outcome = {}

        def waiter():
            try:
                yield s.when_delivered(900.0)
            except HostDied:
                outcome["failed_at"] = eng.now

        eng.spawn(waiter())
        eng.call_at(2.0, lambda: fab.kill_host("h2"))
        eng.run()
        assert outcome["failed_at"] == pytest.approx(2.0)


class TestOnRealTopologies:
    def test_fat_tree_pipeline_saturates_hosts(self):
        # A 60-host fat tree: a sorted chain crosses the uplink once and
        # every hop runs at the 1 Gb host rate.
        net = build_fat_tree(8, hosts_per_switch=4)
        eng = Engine()
        fab = Fabric(eng, net)
        size = 1e9
        prev = fab.open_stream("node-1", "node-2", size, depth=0)
        streams = [prev]
        for i in range(2, 8):
            s = fab.open_stream(
                f"node-{i}", f"node-{i + 1}", size,
                supply=StreamSupply(prev), depth=i - 1,
            )
            streams.append(s)
            prev = s
        eng.run()
        assert all(s.done for s in streams)
        assert eng.now == pytest.approx(size / GIGABIT, rel=0.01)

    def test_shared_uplink_contention(self):
        # Random-order style: two cross-switch flows share the uplink.
        net = build_fat_tree(60, hosts_per_switch=30, uplink_rate=2 * GIGABIT)
        eng = Engine()
        fab = Fabric(eng, net)
        a = fab.open_stream("node-1", "node-31", 1e9)
        b = fab.open_stream("node-2", "node-32", 1e9)
        fab.settle()
        # Each host NIC is 1 Gb; uplink 2 Gb carries both -> both at 1 Gb.
        assert a.effective_rate == pytest.approx(GIGABIT, rel=1e-3)
        # Now a third cross flow: uplink 2 Gb / 3 flows.
        c = fab.open_stream("node-3", "node-33", 1e9)
        fab.settle()
        for s in (a, b, c):
            assert s.effective_rate == pytest.approx(2 * GIGABIT / 3, rel=1e-3)
