"""Tests for the weighted max-min fair allocator."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SimulationError
from repro.simnet.flows import FlowSpec, solve_max_min


def flow(key, constraints, limit=math.inf):
    return FlowSpec(key, tuple(constraints), limit)


class TestBasics:
    def test_empty(self):
        assert solve_max_min([], {}) == {}

    def test_single_flow_single_link(self):
        rates = solve_max_min([flow("f", [("l", 1.0)])], {"l": 100.0})
        assert rates["f"] == pytest.approx(100.0)

    def test_two_flows_share_equally(self):
        rates = solve_max_min(
            [flow("a", [("l", 1.0)]), flow("b", [("l", 1.0)])], {"l": 100.0}
        )
        assert rates["a"] == pytest.approx(50.0)
        assert rates["b"] == pytest.approx(50.0)

    def test_limit_frees_capacity(self):
        rates = solve_max_min(
            [flow("a", [("l", 1.0)], limit=10.0), flow("b", [("l", 1.0)])],
            {"l": 100.0},
        )
        assert rates["a"] == pytest.approx(10.0)
        assert rates["b"] == pytest.approx(90.0)

    def test_bottleneck_chain(self):
        # a traverses both links; b only the fat one.
        rates = solve_max_min(
            [
                flow("a", [("thin", 1.0), ("fat", 1.0)]),
                flow("b", [("fat", 1.0)]),
            ],
            {"thin": 10.0, "fat": 100.0},
        )
        assert rates["a"] == pytest.approx(10.0)
        assert rates["b"] == pytest.approx(90.0)

    def test_unconstrained_flow_gets_inf(self):
        rates = solve_max_min([flow("a", [])], {})
        assert math.isinf(rates["a"])

    def test_zero_capacity(self):
        rates = solve_max_min([flow("a", [("l", 1.0)])], {"l": 0.0})
        assert rates["a"] == pytest.approx(0.0)

    def test_zero_limit(self):
        rates = solve_max_min([flow("a", [("l", 1.0)], limit=0.0)], {"l": 10.0})
        assert rates["a"] == pytest.approx(0.0)


class TestWeights:
    def test_weighted_consumption(self):
        # One flow consumes the pool at weight 2: pool of 100 supports t
        # with 2t + t = 100 -> both rates 33.3 (equal rates, unequal usage).
        rates = solve_max_min(
            [flow("heavy", [("pool", 2.0)]), flow("light", [("pool", 1.0)])],
            {"pool": 100.0},
        )
        assert rates["heavy"] == pytest.approx(100 / 3)
        assert rates["light"] == pytest.approx(100 / 3)

    def test_relay_copy_budget(self):
        # A relay host: inbound and outbound flow both consume its copy
        # budget -> each gets half (the paper's 10 GbE memory bottleneck).
        rates = solve_max_min(
            [
                flow("in", [("copy", 1.0), ("nic_in", 1.0)]),
                flow("out", [("copy", 1.0), ("nic_out", 1.0)]),
            ],
            {"copy": 500.0, "nic_in": 1250.0, "nic_out": 1250.0},
        )
        assert rates["in"] == pytest.approx(250.0)
        assert rates["out"] == pytest.approx(250.0)

    def test_invalid_weight(self):
        with pytest.raises(SimulationError):
            flow("x", [("l", 0.0)])

    def test_duplicate_constraint_rejected(self):
        with pytest.raises(SimulationError):
            solve_max_min([flow("x", [("l", 1.0), ("l", 1.0)])], {"l": 1.0})

    def test_unknown_constraint_rejected(self):
        with pytest.raises(SimulationError):
            solve_max_min([flow("x", [("ghost", 1.0)])], {})


class TestFairness:
    def test_many_flows_one_link(self):
        flows = [flow(i, [("l", 1.0)]) for i in range(10)]
        rates = solve_max_min(flows, {"l": 100.0})
        for i in range(10):
            assert rates[i] == pytest.approx(10.0)

    def test_parking_lot(self):
        # Classic scenario: long flow through 3 links, one short flow per
        # link.  Max-min: long flow gets 50 on its tightest sharing.
        flows = [
            flow("long", [("l1", 1.0), ("l2", 1.0), ("l3", 1.0)]),
            flow("s1", [("l1", 1.0)]),
            flow("s2", [("l2", 1.0)]),
            flow("s3", [("l3", 1.0)]),
        ]
        rates = solve_max_min(flows, {"l1": 100.0, "l2": 100.0, "l3": 100.0})
        assert rates["long"] == pytest.approx(50.0)
        assert rates["s1"] == pytest.approx(50.0)

    @given(
        n_flows=st.integers(min_value=1, max_value=12),
        n_links=st.integers(min_value=1, max_value=6),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_feasible_and_pareto(self, n_flows, n_links, data):
        """Properties: (1) no constraint is over-consumed; (2) every flow is
        saturated — capped by its limit or by a fully-used constraint
        (Pareto optimality of max-min allocations)."""
        caps = {
            f"l{j}": data.draw(st.floats(min_value=1.0, max_value=1000.0))
            for j in range(n_links)
        }
        flows = []
        for i in range(n_flows):
            k = data.draw(st.integers(min_value=1, max_value=n_links))
            chosen = data.draw(
                st.lists(
                    st.sampled_from(sorted(caps)), min_size=k, max_size=k,
                    unique=True,
                )
            )
            weights = [
                data.draw(st.floats(min_value=0.5, max_value=3.0))
                for _ in chosen
            ]
            limit = data.draw(
                st.one_of(st.just(math.inf),
                          st.floats(min_value=0.0, max_value=500.0))
            )
            flows.append(flow(i, list(zip(chosen, weights)), limit))
        rates = solve_max_min(flows, caps)

        usage = {c: 0.0 for c in caps}
        for f in flows:
            for ckey, w in f.constraints:
                usage[ckey] += w * rates[f.key]
        for ckey, cap in caps.items():
            assert usage[ckey] <= cap * (1 + 1e-6) + 1e-6

        for f in flows:
            r = rates[f.key]
            assert r <= f.limit + 1e-6
            at_limit = r >= f.limit - 1e-6
            on_saturated = any(
                usage[ckey] >= caps[ckey] * (1 - 1e-5) - 1e-6
                for ckey, _w in f.constraints
            )
            assert at_limit or on_saturated or math.isinf(r), (
                f"flow {f.key} not saturated: rate={r}"
            )
