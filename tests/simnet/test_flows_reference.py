"""Cross-validation of the heap-based max-min solver against a slow,
obviously-correct reference implementation (numeric water-filling)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.simnet.flows import FlowSpec, solve_max_min


def reference_max_min(flows, capacities, step_count=200_000):
    """Brute-force progressive filling by explicit iteration.

    Raises the shared water level in tiny steps, freezing flows whose
    limit is hit or whose constraints run dry.  O(steps x flows) — only
    for tiny property-test instances.
    """
    rates = {f.key: 0.0 for f in flows}
    frozen = {f.key: False for f in flows}
    remaining = dict(capacities)
    # Rates can exceed a capacity when weights are < 1 (a 0.5-weight
    # flow consumes half a unit per unit of rate), so the water level
    # bound must divide by the smallest weight in play.
    min_weight = min(
        [w for f in flows for _c, w in f.constraints] + [1.0]
    )
    bound = max(
        [c / min_weight for c in capacities.values()] +
        [f.limit for f in flows if math.isfinite(f.limit)] + [1.0]
    )
    # 5% headroom so the loop provably crosses every freeze point.
    dt = bound * 1.05 / step_count
    for _ in range(step_count):
        if all(frozen.values()):
            break
        # Freeze at limits.
        for f in flows:
            if not frozen[f.key] and rates[f.key] >= f.limit - 1e-12:
                rates[f.key] = f.limit
                frozen[f.key] = True
        # Freeze on exhausted constraints.
        for f in flows:
            if frozen[f.key]:
                continue
            for ckey, w in f.constraints:
                if remaining[ckey] <= 1e-9:
                    frozen[f.key] = True
                    break
        # Advance the unfrozen.
        for f in flows:
            if frozen[f.key]:
                continue
            rates[f.key] += dt
            for ckey, w in f.constraints:
                remaining[ckey] -= w * dt
    for f in flows:
        if not frozen[f.key]:
            rates[f.key] = math.inf
    return rates


@given(
    n_flows=st.integers(min_value=1, max_value=6),
    n_links=st.integers(min_value=1, max_value=4),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_matches_reference(n_flows, n_links, data):
    caps = {
        f"l{j}": data.draw(st.floats(min_value=5.0, max_value=100.0))
        for j in range(n_links)
    }
    flows = []
    for i in range(n_flows):
        k = data.draw(st.integers(min_value=0, max_value=n_links))
        chosen = data.draw(st.lists(
            st.sampled_from(sorted(caps)), min_size=k, max_size=k, unique=True,
        )) if k else []
        weights = [data.draw(st.sampled_from([0.5, 1.0, 2.0])) for _ in chosen]
        limit = data.draw(st.one_of(
            st.just(math.inf), st.floats(min_value=1.0, max_value=80.0)))
        flows.append(FlowSpec(i, tuple(zip(chosen, weights)), limit))

    fast = solve_max_min(flows, caps)
    slow = reference_max_min(flows, caps)
    for f in flows:
        a, b = fast[f.key], slow[f.key]
        if math.isinf(a) or math.isinf(b):
            assert math.isinf(a) and math.isinf(b), (a, b)
        else:
            # The reference quantises by its step size; tolerate that.
            assert a == pytest.approx(b, rel=0.02, abs=0.05), (
                f"flow {f.key}: fast={a} slow={b}"
            )


def test_reference_sanity():
    flows = [FlowSpec("a", (("l", 1.0),)), FlowSpec("b", (("l", 1.0),))]
    rates = reference_max_min(flows, {"l": 100.0})
    assert rates["a"] == pytest.approx(50.0, rel=0.02)
