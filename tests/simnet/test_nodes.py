"""Tests for NodeRx / HeadRx reception tracking."""

import pytest

from repro.simnet import Engine, Fabric, HeadRx, NodeRx, Timeout
from repro.topology import Network


def star_net(n=4, rate=100.0):
    net = Network()
    net.add_switch("sw")
    for i in range(1, n + 1):
        net.add_host(f"h{i}", nic_rate=rate)
        net.add_link(f"h{i}", "sw", rate, 0.0)
    return net


@pytest.fixture
def env():
    eng = Engine()
    fab = Fabric(eng, star_net())
    return eng, fab


class TestNodeRx:
    def test_initial_position_zero(self, env):
        eng, _ = env
        rx = NodeRx(eng, "h2")
        assert rx.position() == 0.0
        assert rx.stream is None

    def test_position_follows_stream(self, env):
        eng, fab = env
        rx = NodeRx(eng, "h2")
        s = fab.open_stream("h1", "h2", 1000.0)
        rx.attach(s)
        eng.run(until=4.0)
        fab._advance()
        assert rx.position() == pytest.approx(400.0, abs=1.0)

    def test_position_frozen_on_detach(self, env):
        eng, fab = env
        rx = NodeRx(eng, "h2")
        s = fab.open_stream("h1", "h2", 1000.0)
        rx.attach(s)
        eng.run(until=3.0)
        fab._advance()
        rx.attach(None)
        pos = rx.position()
        assert pos == pytest.approx(300.0, abs=1.0)
        eng.run(until=8.0)
        assert rx.position() == pos  # frozen

    def test_position_never_goes_backward(self, env):
        eng, fab = env
        rx = NodeRx(eng, "h2")
        s = fab.open_stream("h1", "h2", 1000.0)
        rx.attach(s)
        eng.run(until=5.0)
        fab._advance()
        rx.attach(None)
        # Re-attach a stream that starts where the old one stopped.
        s2 = fab.open_stream("h1", "h2", 500.0, offset0=rx.position())
        rx.attach(s2)
        assert rx.position() >= 499.0

    def test_wait_for_simple(self, env):
        eng, fab = env
        rx = NodeRx(eng, "h2")
        times = {}

        def waiter():
            yield from rx.wait_for(500.0)
            times["t"] = eng.now

        eng.spawn(waiter())
        s = fab.open_stream("h1", "h2", 1000.0)
        rx.attach(s)
        eng.run()
        assert times["t"] == pytest.approx(5.0, abs=0.1)

    def test_wait_for_survives_stream_replacement(self, env):
        eng, fab = env
        rx = NodeRx(eng, "h2")
        times = {}

        def waiter():
            yield from rx.wait_for(800.0)
            times["t"] = eng.now

        def driver():
            s1 = fab.open_stream("h1", "h2", 10_000.0)
            rx.attach(s1)
            yield Timeout(4.0)  # 400 bytes in
            s1.cancel()
            rx.attach(None)
            yield Timeout(1.0)  # gap
            s2 = fab.open_stream("h1", "h2", 10_000.0, offset0=rx.position())
            rx.attach(s2)

        eng.spawn(waiter())
        eng.spawn(driver())
        eng.run(until=30.0)
        # 400 bytes by t=4, stall until t=5, 400 more by t=9.
        assert times["t"] == pytest.approx(9.0, abs=0.2)

    def test_wait_for_already_satisfied(self, env):
        eng, fab = env
        rx = NodeRx(eng, "h2")
        s = fab.open_stream("h1", "h2", 100.0)
        rx.attach(s)
        eng.run()
        done = {}

        def waiter():
            got = yield from rx.wait_for(50.0)
            done["pos"] = got

        eng.spawn(waiter())
        eng.run()
        assert done["pos"] >= 99.0

    def test_abort_marks_and_detaches(self, env):
        eng, fab = env
        rx = NodeRx(eng, "h2")
        s = fab.open_stream("h1", "h2", 100.0)
        rx.attach(s)
        rx.abort()
        assert rx.aborted
        assert rx.stream is None


class TestHeadRx:
    def test_position_is_size(self, env):
        eng, _ = env
        head = HeadRx(eng, "h1", 5000.0)
        assert head.position() == 5000.0

    def test_wait_for_returns_immediately(self, env):
        eng, _ = env
        head = HeadRx(eng, "h1", 5000.0)
        done = {}

        def waiter():
            got = yield from head.wait_for(1000.0)
            done["pos"] = got
            yield Timeout(0.0)

        eng.spawn(waiter())
        eng.run()
        assert done["pos"] == 5000.0
