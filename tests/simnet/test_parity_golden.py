"""Golden parity fixtures for the simulation kernel.

Determinism is the engine's contract: the same scenario must produce the
same event trace, the same message log, and the same digests on every
run — and across kernel refactors.  These tests pin a set of
protocol-exact (protosim) and fluid (fabric/flows) scenarios against
fixtures captured in ``golden_kernel_parity.json``, so a scheduling or
solver change that perturbs tie-breaking, timing, or delivery order
fails loudly instead of silently skewing every figure.

Protosim scenarios are compared *exactly* (full trace + message-log
hashes, byte counts, repr-exact sim time).  Fluid scenarios compare the
milestone sequence exactly and completion times within 1e-6 relative —
the incremental solver is allowed float-ulp drift from reassociated
arithmetic, but never a different event order.

Regenerate (only when an intentional behaviour change lands) with::

    PYTHONPATH=src python tests/simnet/test_parity_golden.py --regenerate
"""

import hashlib
import json
import pathlib

import pytest

from repro.core import HashingSink, KascadeConfig, PatternSource
from repro.core.tracing import TraceCollector
from repro.protosim import ProtoBroadcast, ProtoCrash

GOLDEN_PATH = pathlib.Path(__file__).with_name("golden_kernel_parity.json")

CFG = KascadeConfig(
    chunk_size=128 * 1024, buffer_chunks=8,
    io_timeout=0.5, ping_timeout=0.25, connect_timeout=1.0,
    report_timeout=10.0, verify_digest=True,
)
SIZE = 1536 * 1024
RECEIVERS = ("n2", "n3", "n4", "n5")


def _run_proto(*, size=SIZE, seed=7, receivers=RECEIVERS, crashes=(),
               config=CFG):
    sinks = {}

    def factory(name):
        sinks[name] = HashingSink()
        return sinks[name]

    tracer = TraceCollector(zero=0.0)
    bc = ProtoBroadcast(
        PatternSource(size, seed=seed), list(receivers),
        sink_factory=factory, config=config, crashes=list(crashes),
    )
    result = bc.run(trace=True, tracer=tracer)

    events = [e.to_dict() for e in tracer.events()]
    trace_sha = hashlib.sha256(
        "\n".join(json.dumps(e, sort_keys=True) for e in events).encode()
    ).hexdigest()
    msg_lines = [
        f"{t!r}|{src}|{dst}|{msg!r}|{plen}"
        for t, src, dst, msg, plen in result.message_log
    ]
    return {
        "ok": result.ok,
        "sim_time": repr(result.sim_time),
        "total_bytes": result.total_bytes,
        "node_bytes": {k: result.node_bytes[k]
                       for k in sorted(result.node_bytes)},
        "crashed": list(result.crashed),
        "digests": {k: sinks[k].hexdigest() for k in sorted(sinks)},
        "milestones": [list(m) for m in tracer.milestones()],
        "n_events": len(events),
        "trace_sha256": trace_sha,
        "n_messages": len(msg_lines),
        "message_log_sha256": hashlib.sha256(
            "\n".join(msg_lines).encode()).hexdigest(),
    }


def _run_fluid(*, topology="switch", n=12, failures=(), size=256e6):
    import numpy as np

    from repro.baselines import KascadeSim
    from repro.baselines.base import SimSetup
    from repro.topology import build_fat_tree, build_single_switch

    if topology == "switch":
        net = build_single_switch(n + 1)
    else:
        net = build_fat_tree(n + 1, hosts_per_switch=10)
    receivers = tuple(f"node-{i}" for i in range(2, n + 2))
    setup = SimSetup(
        network=net, head="node-1", receivers=receivers, size=size,
        failures=tuple(failures), include_startup=False,
        rng=np.random.default_rng(42),
    )
    res = KascadeSim().run(setup, trace=True)
    return {
        "kind": "fluid",
        "milestones": [list(m) for m in res.events.milestones()],
        "data_time": repr(res.data_time),
        "finish_times": {k: repr(res.finish_times[k])
                         for k in sorted(res.finish_times)},
        "completed": list(res.completed),
        "failed": list(res.failed),
        "aborted": list(res.aborted),
    }


SCENARIOS = {
    "chain_clean": lambda: _run_proto(),
    "chain_crash_close": lambda: _run_proto(
        crashes=[ProtoCrash("n3", after_bytes=768 * 1024)]),
    "chain_crash_silent": lambda: _run_proto(
        crashes=[ProtoCrash("n3", after_bytes=768 * 1024, mode="silent")]),
    "chain_crash_at_time": lambda: _run_proto(
        crashes=[ProtoCrash("n4", at_time=0.008)]),
    "striped_k2": lambda: _run_proto(
        seed=5, config=CFG.with_(stripes=2)),
    "fluid_chain_failover": lambda: _run_fluid(
        failures=((0.8, "node-5"),)),
    "fluid_fat_tree": lambda: _run_fluid(topology="fat_tree", n=40),
}

#: Relative tolerance for fluid completion times: the incremental solver
#: may reassociate float arithmetic, never reorder events.
_FLUID_RTOL = 1e-6


def _load_golden():
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"missing {GOLDEN_PATH.name}; regenerate with "
            "PYTHONPATH=src python tests/simnet/test_parity_golden.py "
            "--regenerate"
        )
    return json.loads(GOLDEN_PATH.read_text())["scenarios"]


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_matches_golden(name):
    got = SCENARIOS[name]()
    want = _load_golden()[name]
    if got.get("kind") == "fluid":
        assert got["milestones"] == want["milestones"], name
        assert got["completed"] == want["completed"]
        assert got["failed"] == want["failed"]
        assert got["aborted"] == want["aborted"]
        assert set(got["finish_times"]) == set(want["finish_times"])
        for node, val in want["finish_times"].items():
            a, b = float(got["finish_times"][node]), float(val)
            assert abs(a - b) <= _FLUID_RTOL * max(1.0, abs(b)), (node, a, b)
        a, b = float(got["data_time"]), float(want["data_time"])
        assert abs(a - b) <= _FLUID_RTOL * max(1.0, abs(b)), (a, b)
    else:
        assert got == want, name


@pytest.mark.parametrize("name", ["chain_crash_silent", "striped_k2"])
def test_identical_runs_are_identical(name):
    # Two fresh engines, same scenario: the traces must be bit-equal —
    # not "equivalent", equal.  This is the determinism contract the
    # immediate-queue / pooling optimizations must preserve.
    assert SCENARIOS[name]() == SCENARIOS[name]()


def _regenerate() -> None:
    doc = {
        "meta": {
            "description": (
                "Golden simulation-kernel parity fixtures; see "
                "tests/simnet/test_parity_golden.py"
            ),
            "regenerate": (
                "PYTHONPATH=src python "
                "tests/simnet/test_parity_golden.py --regenerate"
            ),
        },
        "scenarios": {},
    }
    for name, fn in SCENARIOS.items():
        got = fn()
        # Sanity: fixtures must capture the behaviour they claim to pin.
        if name == "chain_clean":
            assert got["ok"] and not got["crashed"]
            assert len(set(got["digests"].values())) == 1
        elif name.startswith("chain_crash"):
            assert got["crashed"], name
            assert got["ok"], (name, got)  # failover must succeed
        elif name == "striped_k2":
            assert got["ok"] and len(set(got["digests"].values())) == 1
        elif name == "fluid_chain_failover":
            assert got["failed"] == ["node-5"]
            assert ["failover", "node-4"] in got["milestones"] or any(
                m[0] == "failover" for m in got["milestones"])
        doc["scenarios"][name] = got
        print(f"captured {name}")
    GOLDEN_PATH.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        sys.exit(f"usage: {sys.argv[0]} --regenerate")
