"""Tests for the fabric tracer: timelines, gantt, bottleneck reports."""

import pytest

from repro.simnet import Engine, Fabric, FabricTracer, StreamSupply, Timeout
from repro.topology import Network


def star_net(n=4, rate=100.0, copy=None):
    net = Network()
    net.add_switch("sw")
    for i in range(1, n + 1):
        kwargs = {"nic_rate": rate}
        if copy is not None:
            kwargs["copy_bw"] = copy
        net.add_host(f"h{i}", **kwargs)
        net.add_link(f"h{i}", "sw", rate, 0.0)
    return net


@pytest.fixture
def env():
    eng = Engine()
    fab = Fabric(eng, star_net())
    tracer = FabricTracer(fab)
    return eng, fab, tracer


class TestTimeline:
    def test_single_stream_span(self, env):
        eng, fab, tracer = env
        s = fab.open_stream("h1", "h2", 1000.0)
        eng.run()
        trace = tracer.streams[s.key]
        assert trace.opened_at == pytest.approx(0.0)
        assert trace.closed_at == pytest.approx(10.0)
        assert trace.final_delivered == pytest.approx(1000.0)
        assert trace.mean_rate == pytest.approx(100.0, rel=0.01)

    def test_rate_change_recorded(self, env):
        eng, fab, tracer = env
        a = fab.open_stream("h1", "h2", 1000.0)

        def second():
            yield Timeout(2.0)
            b = fab.open_stream("h1", "h3", 100.0)
            yield b.completed

        eng.spawn(second())
        eng.run()
        timeline = tracer.timeline_of(a.key)
        rates = [r for _t, r in timeline]
        # 100 alone, 50 shared, 100 again.
        assert rates[0] == pytest.approx(100.0)
        assert any(r == pytest.approx(50.0) for r in rates)
        assert rates[-1] == pytest.approx(100.0)

    def test_rate_at(self, env):
        eng, fab, tracer = env
        a = fab.open_stream("h1", "h2", 1000.0)
        b = fab.open_stream("h1", "h3", 200.0)  # shares until t=4
        eng.run()
        trace = tracer.streams[a.key]
        assert trace.rate_at(1.0) == pytest.approx(50.0)
        assert trace.rate_at(6.0) == pytest.approx(100.0)
        assert trace.rate_at(100.0) == 0.0  # after close


class TestReports:
    def test_gantt_contains_streams(self, env):
        eng, fab, tracer = env
        fab.open_stream("h1", "h2", 500.0)
        fab.open_stream("h3", "h4", 1000.0)
        eng.run()
        text = tracer.gantt(width=40)
        assert "h1->h2" in text
        assert "h3->h4" in text
        assert "█" in text

    def test_empty_gantt(self, env):
        _eng, _fab, tracer = env
        assert "(no streams traced)" in tracer.gantt()

    def test_bottleneck_constraint_attribution(self):
        eng = Engine()
        net = star_net(copy=40.0)  # relay copy budget binds
        fab = Fabric(eng, net)
        tracer = FabricTracer(fab)
        s1 = fab.open_stream("h1", "h2", 400.0)
        s2 = fab.open_stream("h2", "h3", 400.0, supply=StreamSupply(s1),
                             depth=1)
        eng.run()
        report = tracer.bottleneck_report()
        assert "copy" in report
        assert "h2" in report

    def test_bottleneck_limit_attribution(self, env):
        eng, fab, tracer = env
        fab.open_stream("h1", "h2", 100.0, limit=10.0)
        eng.run()
        assert "limit" in tracer.bottleneck_report()

    def test_chain_coupling_attribution(self, env):
        eng, fab, tracer = env
        s1 = fab.open_stream("h1", "h2", 1000.0, limit=20.0)
        s2 = fab.open_stream("h2", "h3", 1000.0, supply=StreamSupply(s1),
                             depth=1)
        eng.run()
        trace = tracer.streams[s2.key]
        assert trace.last_binding in ("chain-coupled", "limit")
        # The downstream hop must have spent most of its life coupled.
        assert trace.mean_rate == pytest.approx(20.0, rel=0.1)
