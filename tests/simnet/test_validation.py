"""Cross-validation: the fluid fabric against the exact chunk-level
pipeline recurrence, on chains where the latter is the ground truth."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.simnet import Engine, Fabric, StreamSupply, Timeout
from repro.simnet.validation import (
    chunk_pipeline_completion,
    chunk_pipeline_times,
)
from repro.topology import Network


class TestRecurrence:
    def test_single_hop(self):
        # One hop, no pipelining: plain transfer time.
        t = chunk_pipeline_completion(1000.0, 100.0, [50.0])
        assert t == pytest.approx(20.0)

    def test_uniform_chain_closed_form(self):
        # n hops at rate r: fill (n-1 chunks) + size/r.
        size, chunk, r, hops = 10_000.0, 100.0, 50.0, 5
        t = chunk_pipeline_completion(size, chunk, [r] * hops)
        assert t == pytest.approx(size / r + (hops - 1) * chunk / r)

    def test_bottleneck_hop_dominates(self):
        # Middle hop at half rate: completion ~ size/slow + fills.
        size, chunk = 10_000.0, 100.0
        t = chunk_pipeline_completion(size, chunk, [100.0, 25.0, 100.0])
        assert t >= size / 25.0
        assert t == pytest.approx(size / 25.0 + chunk / 100.0 + chunk / 100.0,
                                  rel=0.02)

    def test_partial_final_chunk(self):
        t = chunk_pipeline_completion(150.0, 100.0, [50.0])
        assert t == pytest.approx(3.0)  # 100/50 + 50/50

    def test_latency_added_per_hop(self):
        base = chunk_pipeline_completion(1000.0, 100.0, [50.0, 50.0])
        with_lat = chunk_pipeline_completion(
            1000.0, 100.0, [50.0, 50.0], hop_latencies=[1.0, 2.0])
        assert with_lat == pytest.approx(base + 3.0)

    def test_zero_size(self):
        assert chunk_pipeline_completion(0.0, 100.0, [50.0]) == 0.0

    def test_per_node_times_monotone(self):
        times = chunk_pipeline_times(5000.0, 100.0, [50.0] * 6)
        assert times == sorted(times)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            chunk_pipeline_completion(100.0, 0.0, [50.0])
        with pytest.raises(ValueError):
            chunk_pipeline_completion(100.0, 10.0, [0.0])
        with pytest.raises(ValueError):
            chunk_pipeline_completion(100.0, 10.0, [5.0], hop_latencies=[1.0, 2.0])


def fluid_chain_completion(size, quantum, hop_rates):
    """The same chain on the fluid fabric: dedicated links per hop,
    per-hop rate limits, store-and-forward quantum via thresholds."""
    n_hops = len(hop_rates)
    net = Network()
    for i in range(n_hops + 1):
        net.add_host(f"h{i}", nic_rate=max(hop_rates) * 10)
    for i in range(n_hops):
        net.add_link(f"h{i}", f"h{i + 1}", max(hop_rates) * 10, 0.0)
    eng = Engine()
    fab = Fabric(eng, net)
    finish = {}

    def hop_proc(i, upstream_stream):
        if upstream_stream is not None:
            yield upstream_stream.when_delivered(min(quantum, size))
        supply = StreamSupply(upstream_stream) if upstream_stream else None
        s = fab.open_stream(
            f"h{i}", f"h{i + 1}", size, supply=supply, depth=i,
            limit=hop_rates[i],
        )
        if i + 1 < n_hops:
            eng.spawn(hop_proc(i + 1, s))
        yield s.completed
        finish[i] = eng.now

    eng.spawn(hop_proc(0, None))
    eng.run()
    return finish[n_hops - 1]


class TestFluidAgainstChunkModel:
    """The substitution claim, measured: on chains the fluid+quantum
    model tracks the exact chunk recurrence to within one chunk-time per
    hop (its documented granularity error)."""

    @pytest.mark.parametrize("rates", [
        [50.0] * 4,                      # uniform
        [100.0, 25.0, 100.0],            # mid-chain bottleneck
        [30.0, 60.0, 90.0],              # increasing
        [90.0, 60.0, 30.0],              # decreasing
    ])
    def test_matches_recurrence(self, rates):
        size, chunk = 20_000.0, 250.0
        exact = chunk_pipeline_completion(size, chunk, rates)
        fluid = fluid_chain_completion(size, chunk, rates)
        tolerance = sum(chunk / r for r in rates)  # one chunk per hop
        assert abs(fluid - exact) <= tolerance, (fluid, exact)
        # And both agree the bottleneck sets the scale.
        assert fluid == pytest.approx(size / min(rates), rel=0.2)

    @given(
        rates=st.lists(st.floats(min_value=10.0, max_value=200.0),
                       min_size=1, max_size=6),
        chunk=st.sampled_from([100.0, 400.0]),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_bounded_divergence(self, rates, chunk):
        size = 30_000.0
        exact = chunk_pipeline_completion(size, chunk, rates)
        fluid = fluid_chain_completion(size, chunk, rates)
        tolerance = sum(chunk / r for r in rates) + 1e-6
        assert abs(fluid - exact) <= tolerance
        # The fluid model never claims to finish before the exact model
        # minus its fill granularity (no free lunch).
        assert fluid >= size / min(rates) - 1e-6
