"""Tests for the Distem-like emulated platform (§IV-G)."""

import pytest

from repro.baselines import KascadeSim, SimSetup
from repro.core.units import GIGABIT, mbps
from repro.distem import (
    SEQUENTIAL_SCENARIOS,
    SIMULTANEOUS_SCENARIOS,
    build_distem_platform,
    paper_scenarios,
)


class TestPlatform:
    def test_default_dimensions(self):
        plat = build_distem_platform()
        assert len(plat.vnodes) == 100
        assert plat.vnodes[0] == "n1"
        assert plat.vnodes[-1] == "n100"

    def test_contiguous_folding(self):
        plat = build_distem_platform()
        assert plat.pnode_of["n1"] == "pnode-1"
        assert plat.pnode_of["n5"] == "pnode-1"
        assert plat.pnode_of["n6"] == "pnode-2"
        assert plat.pnode_of["n100"] == "pnode-20"

    def test_vnode_copy_limit(self):
        plat = build_distem_platform()
        host = plat.network.host("n1")
        assert host.copy_limit == pytest.approx(160e6)

    def test_nic_shared_per_pnode(self):
        plat = build_distem_platform()
        # Crossing pnodes goes through two 1 Gb NIC links + cluster switch.
        route = plat.network.route("n5", "n6")
        caps = [l.capacity for l in route]
        assert GIGABIT in caps

    def test_intra_pnode_traffic_stays_local(self):
        plat = build_distem_platform()
        route = plat.network.route("n1", "n2")
        assert all(l.capacity > GIGABIT for l in route)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            build_distem_platform(0)
        with pytest.raises(ValueError):
            build_distem_platform(5, 0)


class TestScenarios:
    def test_seven_bars(self):
        scenarios = paper_scenarios()
        assert len(scenarios) == 7
        assert scenarios[0].n_failures == 0

    def test_failure_counts(self):
        assert [s.n_failures for s in SIMULTANEOUS_SCENARIOS] == [2, 5, 10]
        assert [s.n_failures for s in SEQUENTIAL_SCENARIOS] == [2, 5, 10]

    def test_simultaneous_all_at_ten_seconds(self):
        for sc in SIMULTANEOUS_SCENARIOS:
            assert all(t == 10.0 for t, _n in sc.events)

    def test_sequential_staggered(self):
        for sc in SEQUENTIAL_SCENARIOS:
            times = [t for t, _n in sc.events]
            assert times == sorted(times)
            assert len(set(times)) == len(times)

    def test_paper_victims(self):
        assert SIMULTANEOUS_SCENARIOS[0].events == ((10.0, "n29"), (10.0, "n69"))


class TestFig15Behaviour:
    def _run(self, scenario):
        plat = build_distem_platform()
        setup = SimSetup(
            network=plat.network, head=plat.vnodes[0],
            receivers=plat.vnodes[1:], size=5e9,
            failures=scenario.events, include_startup=False,
        )
        return KascadeSim().run(setup)

    def test_reference_near_80(self):
        r = self._run(paper_scenarios()[0])
        assert mbps(r.throughput) == pytest.approx(80, abs=6)
        assert len(r.completed) == 99

    def test_transfer_completes_under_all_scenarios(self):
        # "in all the cases, the file was transferred correctly" (§IV-G)
        for sc in paper_scenarios():
            r = self._run(sc)
            assert len(r.completed) == 99 - sc.n_failures, sc.name
            assert not r.aborted, sc.name

    def test_sequential_worse_than_simultaneous(self):
        sim10 = self._run(SIMULTANEOUS_SCENARIOS[2]).throughput
        seq10 = self._run(SEQUENTIAL_SCENARIOS[2]).throughput
        assert seq10 < sim10

    def test_sequential_cost_grows_with_count(self):
        rates = [self._run(sc).throughput for sc in SEQUENTIAL_SCENARIOS]
        assert rates[0] > rates[1] > rates[2]
