"""Documentation health: the generator runs and the docs stay honest."""

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestApiDocGenerator:
    def test_generates_and_covers_key_symbols(self, tmp_path):
        out = tmp_path / "API.md"
        proc = subprocess.run(
            [sys.executable, str(ROOT / "scripts" / "gen_api_docs.py"),
             str(out)],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        text = out.read_text()
        for symbol in (
            "KascadeConfig", "ChunkRingBuffer", "PipelinePlan",
            "LocalBroadcast", "KascadeSim", "SlowNodePolicy",
            "build_fat_tree", "solve_max_min", "FabricTracer",
            "fig15_fault_tolerance",
            "run_broadcast", "BroadcastSession", "TraceCollector",
            "classify_detector",
        ):
            assert symbol in text, f"{symbol} missing from API.md"

    def test_checked_in_copy_exists(self):
        api = ROOT / "docs" / "API.md"
        assert api.exists()
        assert "API reference" in api.read_text()


class TestObservabilityDoc:
    def test_covers_schema_and_workflows(self):
        text = (ROOT / "docs" / "OBSERVABILITY.md").read_text()
        # The schema table names every event type and detector.
        from repro.core.tracing import EVENT_TYPES
        for etype in EVENT_TYPES:
            assert f"`{etype}`" in text, f"{etype} missing from schema"
        for topic in ("failure chronology", "milestones", "run_broadcast",
                      "--trace", "NULL_TRACER", "perfstats"):
            assert topic in text, f"{topic} not documented"


class TestDocsCrossReferences:
    def test_readme_references_exist(self):
        readme = (ROOT / "README.md").read_text()
        for path in ("DESIGN.md", "EXPERIMENTS.md", "docs/PROTOCOL.md",
                     "docs/SIMULATOR.md"):
            assert path.split("/")[-1] in readme
            assert (ROOT / path).exists(), path

    def test_examples_listed_in_readme_exist(self):
        readme = (ROOT / "README.md").read_text()
        import re
        for match in re.finditer(r"examples/(\w+\.py)", readme):
            assert (ROOT / "examples" / match.group(1)).exists(), match.group(0)

    def test_experiments_covers_every_figure(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for fig in ("Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11",
                    "Fig. 12", "Fig. 13", "Fig. 14", "Fig. 15"):
            assert fig in text, f"{fig} missing from EXPERIMENTS.md"

    def test_design_lists_substitutions(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "Grid'5000" in text
        assert "Distem" in text
        assert "substitution" in text.lower()


class TestDocstringCoverage:
    """Every public item in every package must carry a docstring."""

    PACKAGES = [
        "repro", "repro.core", "repro.topology", "repro.simnet",
        "repro.runtime", "repro.launch", "repro.baselines",
        "repro.protosim", "repro.distem", "repro.bench",
    ]

    def test_public_api_documented(self):
        import importlib
        import inspect

        undocumented = []
        for pkg_name in self.PACKAGES:
            module = importlib.import_module(pkg_name)
            assert inspect.getdoc(module), f"{pkg_name} has no module docstring"
            names = getattr(module, "__all__", None) or [
                n for n in vars(module) if not n.startswith("_")
            ]
            for name in names:
                obj = getattr(module, name, None)
                if obj is None or inspect.ismodule(obj):
                    continue
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        undocumented.append(f"{pkg_name}.{name}")
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_public_methods_documented(self):
        """Public methods of the flagship classes are documented."""
        import inspect

        from repro.baselines import BroadcastMethod, KascadeSim
        from repro.core import ChunkRingBuffer, PipelinePlan, TransferReport
        from repro.runtime import LocalBroadcast
        from repro.simnet import Fabric, Stream

        missing = []
        for cls in (ChunkRingBuffer, PipelinePlan, TransferReport,
                    LocalBroadcast, Fabric, Stream, BroadcastMethod,
                    KascadeSim):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_"):
                    continue
                if inspect.isfunction(member) and member.__qualname__.startswith(
                        cls.__name__ + "."):
                    if not inspect.getdoc(member):
                        missing.append(f"{cls.__name__}.{name}")
        assert not missing, f"missing method docstrings: {missing}"
