"""Tests for the startup-time models."""

import pytest

from repro.launch import (
    ClusterShellWindowed,
    InstantLauncher,
    Launcher,
    MpirunLauncher,
    SSHSequential,
    TakTukAdaptiveTree,
    TakTukWindowed,
)


class TestShapes:
    def test_instant_is_zero(self):
        assert InstantLauncher().startup_time(200) == 0.0

    def test_negative_nodes_rejected(self):
        with pytest.raises(ValueError):
            Launcher().startup_time(-1)

    @pytest.mark.parametrize("launcher", [
        TakTukWindowed(), TakTukAdaptiveTree(), ClusterShellWindowed(),
        SSHSequential(), MpirunLauncher(),
    ])
    def test_monotonic_in_nodes(self, launcher):
        times = [launcher.startup_time(n) for n in (0, 1, 10, 50, 100, 200)]
        assert times == sorted(times)

    def test_sequential_is_linear(self):
        ssh = SSHSequential()
        t100 = ssh.startup_time(100)
        t200 = ssh.startup_time(200)
        assert t200 - t100 == pytest.approx(100 * ssh.per_node + 100 * 1e-4)

    def test_windowed_much_faster_than_sequential(self):
        assert TakTukWindowed().startup_time(200) < SSHSequential().startup_time(200) / 5

    def test_tree_faster_than_windowed_at_scale(self):
        # The adaptive tree is the faster deployment (§III-B) — Kascade
        # still picks windowed for fault-tolerance.
        assert (TakTukAdaptiveTree().startup_time(500)
                < TakTukWindowed().startup_time(500))

    def test_mpirun_efficient(self):
        # Fig. 14: MPI has the efficient startup.
        assert MpirunLauncher().startup_time(200) < TakTukWindowed().startup_time(200)

    def test_paper_scale_magnitudes(self):
        # At 200 nodes Kascade's TakTuk-windowed startup is a couple of
        # seconds — enough to dominate a 50 MB transfer (Fig. 14) while
        # costing a 2 GB transfer only a few percent (Fig. 7).
        t = TakTukWindowed().startup_time(200)
        assert 1.0 < t < 4.0
