"""Tests for the startup-time models."""

import math

import pytest

from repro.launch import (
    ClusterShellWindowed,
    InstantLauncher,
    LaunchComparison,
    Launcher,
    MpirunLauncher,
    SSHSequential,
    TakTukAdaptiveTree,
    TakTukWindowed,
    compare_measured,
)


class TestShapes:
    def test_instant_is_zero(self):
        assert InstantLauncher().startup_time(200) == 0.0

    def test_negative_nodes_rejected(self):
        with pytest.raises(ValueError):
            Launcher().startup_time(-1)

    @pytest.mark.parametrize("launcher", [
        TakTukWindowed(), TakTukAdaptiveTree(), ClusterShellWindowed(),
        SSHSequential(), MpirunLauncher(),
    ])
    def test_monotonic_in_nodes(self, launcher):
        times = [launcher.startup_time(n) for n in (0, 1, 10, 50, 100, 200)]
        assert times == sorted(times)

    def test_sequential_is_linear(self):
        ssh = SSHSequential()
        t100 = ssh.startup_time(100)
        t200 = ssh.startup_time(200)
        assert t200 - t100 == pytest.approx(100 * ssh.per_node + 100 * 1e-4)

    def test_windowed_much_faster_than_sequential(self):
        assert TakTukWindowed().startup_time(200) < SSHSequential().startup_time(200) / 5

    def test_tree_faster_than_windowed_at_scale(self):
        # The adaptive tree is the faster deployment (§III-B) — Kascade
        # still picks windowed for fault-tolerance.
        assert (TakTukAdaptiveTree().startup_time(500)
                < TakTukWindowed().startup_time(500))

    def test_mpirun_efficient(self):
        # Fig. 14: MPI has the efficient startup.
        assert MpirunLauncher().startup_time(200) < TakTukWindowed().startup_time(200)

    def test_paper_scale_magnitudes(self):
        # At 200 nodes Kascade's TakTuk-windowed startup is a couple of
        # seconds — enough to dominate a 50 MB transfer (Fig. 14) while
        # costing a 2 GB transfer only a few percent (Fig. 7).
        t = TakTukWindowed().startup_time(200)
        assert 1.0 < t < 4.0


class TestValidation:
    @pytest.mark.parametrize("window", [0, -1, -50])
    def test_windowed_models_reject_degenerate_windows(self, window):
        with pytest.raises(ValueError, match="window"):
            TakTukWindowed(window=window)
        with pytest.raises(ValueError, match="window"):
            ClusterShellWindowed(window=window)

    @pytest.mark.parametrize("fanout", [0, -2])
    def test_tree_rejects_degenerate_fanout(self, fanout):
        with pytest.raises(ValueError, match="fanout"):
            TakTukAdaptiveTree(fanout=fanout)

    def test_window_of_one_is_sequential_but_valid(self):
        # window=1 degenerates to one wave per node — slow, not illegal.
        t = TakTukWindowed(window=1).startup_time(10)
        assert t > TakTukWindowed(window=10).startup_time(10)

    @pytest.mark.parametrize("launcher", [
        Launcher(), TakTukWindowed(), TakTukAdaptiveTree(),
        ClusterShellWindowed(), SSHSequential(), MpirunLauncher(),
    ])
    def test_negative_counts_rejected_uniformly(self, launcher):
        with pytest.raises(ValueError, match="negative node count"):
            launcher.startup_time(-1)
        with pytest.raises(ValueError, match="negative rtt"):
            launcher.startup_time(5, rtt=-0.1)


class TestCompareMeasured:
    def test_scores_measured_against_prediction(self):
        model = TakTukWindowed(window=8)
        cmp = compare_measured(1.0, model, 8, rtt=0.0)
        assert isinstance(cmp, LaunchComparison)
        assert cmp.predicted_s == pytest.approx(model.startup_time(8, 0.0))
        assert cmp.measured_s == 1.0
        assert cmp.error_s == pytest.approx(1.0 - cmp.predicted_s)
        assert cmp.ratio == pytest.approx(1.0 / cmp.predicted_s)

    def test_perfect_prediction_has_ratio_one(self):
        model = SSHSequential()
        predicted = model.startup_time(4)
        cmp = compare_measured(predicted, model, 4)
        assert cmp.ratio == pytest.approx(1.0)
        assert cmp.error_s == pytest.approx(0.0)

    def test_zero_cost_model_edge_cases(self):
        instant = InstantLauncher()
        assert compare_measured(0.0, instant, 3).ratio == 1.0
        assert compare_measured(0.5, instant, 3).ratio == math.inf

    def test_negative_measurement_rejected(self):
        with pytest.raises(ValueError, match="negative measured"):
            compare_measured(-0.1, TakTukWindowed(), 4)

    def test_render_mentions_model_and_scale(self):
        line = compare_measured(0.8, TakTukWindowed(window=8), 8).render()
        assert "TakTukWindowed" in line
        assert "8 node(s)" in line
        assert "0.800s" in line
