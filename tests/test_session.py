"""Tests for the unified session API (repro.session) — one facade, two
backends, one result-and-trace shape."""

import warnings

import pytest

import repro
from repro import BroadcastSession, run_broadcast
from repro.core import BytesSource, KascadeConfig, KascadeError
from repro.core.tracing import NULL_TRACER, TraceCollector
from repro.runtime import CrashPlan
from repro.session import _resolve_trace

FAST = KascadeConfig(
    chunk_size=4096,
    buffer_chunks=4,
    io_timeout=0.25,
    ping_timeout=0.2,
    connect_timeout=0.5,
    report_timeout=6.0,
)

PAYLOAD = bytes((i * 7) % 256 for i in range(64 * 1024))


class TestResolveTrace:
    def test_none_and_false_disable(self):
        assert _resolve_trace(None) == (NULL_TRACER, None)
        assert _resolve_trace(False) == (NULL_TRACER, None)

    def test_true_makes_a_collector(self):
        tracer, path = _resolve_trace(True)
        assert isinstance(tracer, TraceCollector)
        assert path is None

    def test_collector_passes_through(self):
        tc = TraceCollector()
        assert _resolve_trace(tc) == (tc, None)

    def test_path_enables_and_remembers(self, tmp_path):
        tracer, path = _resolve_trace(tmp_path / "t.jsonl")
        assert isinstance(tracer, TraceCollector)
        assert path == str(tmp_path / "t.jsonl")

    def test_garbage_rejected(self):
        with pytest.raises(TypeError):
            _resolve_trace(42)


class TestFacadeShape:
    def test_unknown_backend_rejected(self):
        with pytest.raises(KascadeError, match="unknown backend"):
            BroadcastSession(BytesSource(b"x"), ["n2"], backend="fluid")

    def test_local_rejects_simnet_options(self):
        with pytest.raises(KascadeError, match="no extra options"):
            run_broadcast(BytesSource(PAYLOAD), ["n2"], config=FAST,
                          bandwidth=1e9)

    def test_simnet_rejects_unknown_options(self):
        with pytest.raises(KascadeError, match="unknown simnet options"):
            run_broadcast(BytesSource(PAYLOAD), ["n2"], backend="simnet",
                          config=FAST, jitter=0.1)

    def test_blessed_names_are_exported(self):
        for name in ("run_broadcast", "BroadcastSession", "BroadcastResult",
                     "CrashPlan", "TraceCollector", "TraceEvent"):
            assert name in repro.__all__
            assert hasattr(repro, name)


class TestBothBackends:
    @pytest.mark.parametrize("backend", ["local", "simnet"])
    def test_clean_run_same_shape(self, backend):
        result = run_broadcast(BytesSource(PAYLOAD), ["n2", "n3"],
                               backend=backend, config=FAST, trace=True,
                               timeout=60.0)
        assert result.ok
        assert result.backend == backend
        assert result.total_bytes == len(PAYLOAD)
        assert set(result.outcomes) == {"n1", "n2", "n3"}
        assert all(o.ok for o in result.outcomes.values())
        assert result.report is not None and not result.report.failures
        assert isinstance(result.trace, TraceCollector)
        # DONE flows tail -> head in both backends (PASSED wave order).
        assert result.trace.milestones() == [
            ("done", "n3"), ("done", "n2"), ("done", "n1")]

    @pytest.mark.parametrize("backend", ["local", "simnet"])
    def test_trace_disabled_by_default(self, backend):
        result = run_broadcast(BytesSource(PAYLOAD), ["n2"],
                               backend=backend, config=FAST, timeout=60.0)
        assert result.ok
        assert result.trace is None

    def test_trace_path_writes_jsonl(self, tmp_path):
        out = tmp_path / "run.jsonl"
        result = run_broadcast(BytesSource(PAYLOAD), ["n2"], config=FAST,
                               trace=out, timeout=60.0)
        assert result.ok
        events = TraceCollector.from_jsonl(out.read_text())
        # Serialization rounds timestamps; compare the JSON projections.
        assert [e.to_dict() for e in events] == \
            [e.to_dict() for e in TraceCollector.from_jsonl(
                result.trace.to_jsonl())]
        assert len(events) == len(result.trace)
        assert any(e.type == "done" and e.node == "n2" for e in events)

    def test_perfstats_match_the_backend(self):
        """Local runs surface I/O counters; simnet runs surface the
        simulation kernel's own counters instead."""
        local = run_broadcast(BytesSource(PAYLOAD), ["n2"], config=FAST,
                              timeout=60.0)
        sim = run_broadcast(BytesSource(PAYLOAD), ["n2"], backend="simnet",
                            config=FAST)
        assert local.perfstats.get("bytes_sent", 0) >= len(PAYLOAD)
        assert sim.perfstats["sim_events_processed"] > 0
        assert sim.perfstats["sim_heap_peak"] > 0
        assert "sim_cancelled_skips" in sim.perfstats
        assert "solver_rounds" in sim.perfstats

    def test_crash_milestones_agree_across_backends(self):
        """The same crash scenario yields the same causal skeleton on real
        TCP and on the simulator — the tentpole's comparability claim."""
        crash = ("n3", FAST.chunk_size * 4, "close")
        kwargs = dict(config=FAST, trace=True, crashes=[crash])
        local = run_broadcast(BytesSource(PAYLOAD), ["n2", "n3", "n4"],
                              timeout=60.0, **kwargs)
        sim = run_broadcast(BytesSource(PAYLOAD), ["n2", "n3", "n4"],
                            backend="simnet", **kwargs)
        assert local.ok and sim.ok
        for result in (local, sim):
            failovers = result.trace.of_type("failover")
            assert [e.peer for e in failovers] == ["n3"]
            assert failovers[0].detector == "error"
        # n3 never reaches DONE on either backend; survivors do, in the
        # same tail-to-head order.
        assert local.trace.milestones("done") == \
            sim.trace.milestones("done") == \
            [("done", "n4"), ("done", "n2"), ("done", "n1")]

    def test_crash_plan_objects_accepted_by_both(self):
        crash = CrashPlan("n2", after_bytes=FAST.chunk_size * 2)
        for backend in ("local", "simnet"):
            result = run_broadcast(BytesSource(PAYLOAD), ["n2", "n3"],
                                   backend=backend, config=FAST,
                                   crashes=[crash], timeout=60.0)
            assert result.ok
            assert result.outcomes["n2"].crashed

    def test_simnet_requires_given_order(self):
        with pytest.raises(KascadeError, match="order='given'"):
            run_broadcast(BytesSource(PAYLOAD), ["n2"], backend="simnet",
                          config=FAST, order="random")


class TestStripeValidation:
    def _stream_source(self):
        import io

        from repro.core.sources import StreamSource
        return StreamSource(io.BytesIO(PAYLOAD))

    @pytest.mark.parametrize("backend", ["local", "simnet"])
    def test_unstripeable_source_rejected_with_catalogue(self, backend):
        """A non-seekable source cannot be striped in place; the error
        names the backend and renders the per-backend support table."""
        with pytest.raises(KascadeError) as exc:
            BroadcastSession(
                self._stream_source(), ["n2", "n3"], backend=backend,
                config=FAST, stripes=2)
        text = str(exc.value)
        assert f"backend {backend!r} cannot run stripes=2" in text
        assert "stripe support by backend" in text
        # Every backend appears in the catalogue, including the one that
        # *would* work (procs spools the stream to a file first).
        for name in ("local", "procs", "simnet"):
            assert name in text

    def test_multi_stripe_plan_triggers_same_validation(self):
        from repro.core.plan import ChainPlan

        plan = ChainPlan.build("n1", ("n2", "n3"), stripes=2, order="given")
        with pytest.raises(KascadeError, match="stripe support by backend"):
            BroadcastSession(self._stream_source(), ["n2", "n3"],
                             config=FAST, plan=plan)

    @pytest.mark.parametrize("backend", ["local", "simnet"])
    def test_prebuilt_plan_rides_through_to_the_result(self, backend):
        from repro.core.plan import ChainPlan

        plan = ChainPlan.build("n1", ("n2", "n3"), stripes=2, order="given")
        result = run_broadcast(BytesSource(PAYLOAD), ["n2", "n3"],
                               backend=backend, config=FAST, plan=plan,
                               timeout=60.0)
        assert result.ok
        assert result.plan == plan
        assert result.total_bytes == len(PAYLOAD)


class TestDeprecationShim:
    def test_runtime_broadcast_warns_but_works(self):
        from repro.runtime import broadcast

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = broadcast(BytesSource(PAYLOAD), ["n2"], config=FAST,
                               timeout=60.0)
        assert result.ok
        assert any(issubclass(w.category, DeprecationWarning) and
                   "run_broadcast" in str(w.message) for w in caught)
