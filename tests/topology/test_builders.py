"""Tests for the platform topology builders."""

import pytest

from repro.core import order_by_hostname
from repro.core.units import GIGABIT, TEN_GIGABIT, TWENTY_GIGABIT
from repro.topology import (
    SITE_ORDER,
    build_fat_tree,
    build_multisite,
    build_single_switch,
    build_two_switch,
    experiment_chain,
    link_usage,
)


class TestFatTree:
    def test_host_count_and_names(self):
        net = build_fat_tree(65, hosts_per_switch=30)
        assert len(net.hosts) == 65
        assert "node-1" in net.hosts and "node-65" in net.hosts
        # 65 hosts / 30 per switch -> 3 ToRs + core
        assert net.switches == {"core", "tor-1", "tor-2", "tor-3"}

    def test_contiguous_switch_blocks(self):
        net = build_fat_tree(65, hosts_per_switch=30)
        assert net.host("node-1").switch == "tor-1"
        assert net.host("node-30").switch == "tor-1"
        assert net.host("node-31").switch == "tor-2"
        assert net.host("node-61").switch == "tor-3"

    def test_sorted_order_minimises_crossings(self):
        net = build_fat_tree(90, hosts_per_switch=30)
        ordered = order_by_hostname(net.host_names())
        assert net.crossings(ordered) == 2  # 3 switches -> 2 boundaries

    def test_rates(self):
        net = build_fat_tree(5)
        assert net.host("node-1").nic_rate == GIGABIT
        uplink = net.route("node-1", "node-31") if len(net.hosts) > 30 else None
        host_link = net.route("node-1", "node-2")[0]
        assert host_link.capacity == GIGABIT

    def test_uplink_capacity(self):
        net = build_fat_tree(60, hosts_per_switch=30)
        route = net.route("node-1", "node-31")
        caps = [l.capacity for l in route]
        assert caps == [GIGABIT, TEN_GIGABIT, TEN_GIGABIT, GIGABIT]

    def test_zero_hosts_rejected(self):
        with pytest.raises(ValueError):
            build_fat_tree(0)


class TestSingleSwitch:
    def test_build(self):
        net = build_single_switch(14)
        assert len(net.hosts) == 14
        assert net.switches == {"sw"}
        assert net.host("node-3").nic_rate == TEN_GIGABIT
        assert len(net.route("node-1", "node-14")) == 2


class TestTwoSwitch:
    def test_fill_first_switch(self):
        net = build_two_switch(200, ports_per_switch=120)
        assert net.host("node-120").switch == "sw-a"
        assert net.host("node-121").switch == "sw-b"

    def test_small_reservation_single_switch(self):
        net = build_two_switch(100, ports_per_switch=120)
        assert all(h.switch == "sw-a" for h in net.hosts.values())

    def test_trunk_on_cross_route(self):
        net = build_two_switch(200, ports_per_switch=120)
        route = net.route("node-1", "node-150")
        assert [l.src for l in route] == ["node-1", "sw-a", "sw-b"]
        assert route[1].capacity == TWENTY_GIGABIT


class TestMultisite:
    def test_baseline_two_home_nodes(self):
        net = build_multisite(0)
        assert set(net.hosts) == {"nancy-1", "nancy-2"}

    def test_sites_added_in_order(self):
        net = build_multisite(3)
        assert set(net.hosts) == {
            "nancy-1", "nancy-2", "lille-1", "grenoble-1", "luxembourg-1",
        }

    def test_intersite_rtt_realistic(self):
        # The paper reports ~16 ms inter-site RTT and <0.2 ms intra-site.
        net = build_multisite(6)
        assert net.rtt("nancy-1", "nancy-2") < 0.2e-3
        rtt = net.rtt("nancy-1", "sophia-1")
        assert 10e-3 < rtt < 40e-3

    def test_experiment_chain(self):
        chain = experiment_chain(2)
        assert chain == ["nancy-1", "nancy-2", "lille-1", "grenoble-1"]

    def test_paris_lyon_reused(self):
        # With all 6 sites in the paper's order, Paris-Lyon is crossed 5
        # times (Fig. 12 caption).
        net = build_multisite(6)
        usage = link_usage(net, experiment_chain(6))
        assert usage.get("lyon-paris") == 5

    def test_invalid_site_count(self):
        with pytest.raises(ValueError):
            build_multisite(len(SITE_ORDER) + 1)
