"""Tests for the network graph model."""

import pytest

from repro.core import SimulationError
from repro.topology import Network


def tiny_net():
    net = Network()
    net.add_switch("sw1")
    net.add_switch("sw2")
    net.add_host("a")
    net.add_host("b")
    net.add_host("c")
    net.add_link("a", "sw1", 125e6, 1e-4)
    net.add_link("b", "sw1", 125e6, 1e-4)
    net.add_link("c", "sw2", 125e6, 1e-4)
    net.add_link("sw1", "sw2", 1250e6, 1e-5)
    return net


class TestConstruction:
    def test_duplicate_names_rejected(self):
        net = Network()
        net.add_host("a")
        with pytest.raises(SimulationError):
            net.add_host("a")
        with pytest.raises(SimulationError):
            net.add_switch("a")

    def test_link_to_unknown_rejected(self):
        net = Network()
        net.add_host("a")
        with pytest.raises(SimulationError):
            net.add_link("a", "ghost", 1e6)

    def test_nonpositive_capacity_rejected(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        with pytest.raises(SimulationError):
            net.add_link("a", "b", 0)

    def test_full_duplex(self):
        net = tiny_net()
        # 4 physical links = 8 directed links
        assert len(net.links) == 8

    def test_switch_attachment_recorded(self):
        net = tiny_net()
        assert net.host("a").switch == "sw1"
        assert net.host("c").switch == "sw2"


class TestRouting:
    def test_same_switch_route(self):
        net = tiny_net()
        route = net.route("a", "b")
        assert [l.src for l in route] == ["a", "sw1"]
        assert [l.dst for l in route] == ["sw1", "b"]

    def test_cross_switch_route(self):
        net = tiny_net()
        route = net.route("a", "c")
        assert [l.dst for l in route] == ["sw1", "sw2", "c"]

    def test_route_to_self_empty(self):
        assert tiny_net().route("a", "a") == ()

    def test_routes_directional(self):
        net = tiny_net()
        fwd = net.route("a", "c")
        back = net.route("c", "a")
        assert {l.link_id for l in fwd}.isdisjoint({l.link_id for l in back})

    def test_no_route_raises(self):
        net = Network()
        net.add_host("a")
        net.add_host("b")
        with pytest.raises(SimulationError):
            net.route("a", "b")

    def test_unknown_host(self):
        with pytest.raises(SimulationError):
            tiny_net().host("ghost")

    def test_latency_and_rtt(self):
        net = tiny_net()
        assert net.path_latency("a", "b") == pytest.approx(2e-4)
        assert net.rtt("a", "b") == pytest.approx(4e-4)

    def test_route_cached(self):
        net = tiny_net()
        assert net.route("a", "c") is net.route("a", "c")


class TestGrouping:
    def test_hosts_by_switch(self):
        groups = tiny_net().hosts_by_switch()
        assert sorted(groups["sw1"]) == ["a", "b"]
        assert groups["sw2"] == ["c"]

    def test_crossings(self):
        net = tiny_net()
        assert net.crossings(["a", "b", "c"]) == 1
        assert net.crossings(["a", "c", "b"]) == 2
        assert net.crossings(["a", "b"]) == 0
