"""Tests for topology-derived pipeline ordering."""

import numpy as np
import pytest

from repro.core import order_randomly
from repro.topology import build_fat_tree, build_two_switch
from repro.topology.ordering import (
    audit_order,
    crossing_count,
    order_by_attachment,
)


class TestOrderByAttachment:
    def test_minimal_crossings(self):
        net = build_fat_tree(90, hosts_per_switch=30)
        order = order_by_attachment(net)
        assert crossing_count(net, order) == 2  # 3 switches

    def test_permutation_of_input(self):
        net = build_fat_tree(20, hosts_per_switch=7)
        order = order_by_attachment(net)
        assert sorted(order) == sorted(net.host_names())

    def test_subset_of_hosts(self):
        net = build_fat_tree(60, hosts_per_switch=30)
        subset = ["node-31", "node-2", "node-45", "node-1"]
        order = order_by_attachment(net, subset)
        assert sorted(order) == sorted(subset)
        assert crossing_count(net, order) == 1

    def test_natural_sort_within_group(self):
        net = build_fat_tree(12, hosts_per_switch=12)
        order = order_by_attachment(net, ["node-10", "node-2", "node-1"])
        assert order == ["node-1", "node-2", "node-10"]

    def test_fixes_shuffled_order(self):
        net = build_fat_tree(120, hosts_per_switch=30)
        shuffled = order_randomly(net.host_names(), np.random.default_rng(5))
        assert crossing_count(net, shuffled) > 30
        fixed = order_by_attachment(net, shuffled)
        assert crossing_count(net, fixed) == 3

    def test_two_switch_platform(self):
        net = build_two_switch(200, ports_per_switch=120)
        order = order_by_attachment(net)
        assert crossing_count(net, order) == 1

    def test_deterministic(self):
        net = build_fat_tree(50)
        assert order_by_attachment(net) == order_by_attachment(net)


class TestAudit:
    def test_good_order_passes(self):
        net = build_fat_tree(90, hosts_per_switch=30)
        audit = audit_order(net, order_by_attachment(net))
        assert audit.is_topology_aware
        assert "topology-aware" in audit.summary()

    def test_shuffled_order_flagged(self):
        net = build_fat_tree(90, hosts_per_switch=30)
        shuffled = order_randomly(net.host_names(), np.random.default_rng(1))
        audit = audit_order(net, shuffled)
        assert not audit.is_topology_aware
        assert audit.proposed_crossings > audit.optimal_crossings
        assert "expect inter-switch links" in audit.summary()

    def test_single_switch_always_aware(self):
        net = build_fat_tree(10, hosts_per_switch=30)
        shuffled = order_randomly(net.host_names(), np.random.default_rng(2))
        audit = audit_order(net, shuffled)
        assert audit.optimal_crossings == 0
        assert audit.is_topology_aware  # nothing to cross on one switch
