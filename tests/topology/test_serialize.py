"""Tests for topology JSON serialization."""

import json
import math

import pytest

from repro.core import SimulationError
from repro.topology import build_fat_tree
from repro.topology.graph import DiskSpec
from repro.topology.serialize import (
    load_network,
    network_from_json,
    network_to_json,
    parse_rate,
)


class TestParseRate:
    def test_raw_number(self):
        assert parse_rate(125e6) == 125e6

    def test_bit_rates(self):
        assert parse_rate("1Gbit") == pytest.approx(125e6)
        assert parse_rate("10Gbit") == pytest.approx(1.25e9)
        assert parse_rate("100Mbit") == pytest.approx(12.5e6)

    def test_byte_rates(self):
        assert parse_rate("120MB") == 120e6
        assert parse_rate("1GiB") == 1 << 30

    def test_bps_synonyms(self):
        assert parse_rate("1Gbps") == pytest.approx(125e6)


DOC = """
{
  "name": "demo",
  "switches": ["tor-1", "tor-2", "core"],
  "hosts": [
    {"name": "a1", "nic_rate": "1Gbit",
     "disk": {"write_bw": "120MB", "seq_efficiency": 0.9}},
    {"name": "a2", "nic_rate": "1Gbit", "copy_limit": "400MB"},
    "b1"
  ],
  "links": [
    {"a": "a1", "b": "tor-1", "capacity": "1Gbit", "latency": 5e-5},
    {"a": "a2", "b": "tor-1", "capacity": "1Gbit"},
    {"a": "b1", "b": "tor-2", "capacity": "1Gbit"},
    {"a": "tor-1", "b": "core", "capacity": "10Gbit"},
    {"a": "tor-2", "b": "core", "capacity": "10Gbit"}
  ]
}
"""


class TestFromJson:
    def test_structure(self):
        net = network_from_json(DOC)
        assert set(net.hosts) == {"a1", "a2", "b1"}
        assert net.switches == {"tor-1", "tor-2", "core"}
        assert net.host("a1").nic_rate == pytest.approx(125e6)
        assert net.host("a1").disk.write_bw == 120e6
        assert net.host("a2").copy_limit == 400e6
        assert math.isinf(net.host("b1").copy_limit)

    def test_routing_works(self):
        net = network_from_json(DOC)
        route = net.route("a1", "b1")
        assert [l.dst for l in route] == ["tor-1", "core", "tor-2", "b1"]

    def test_bad_json_rejected(self):
        with pytest.raises(SimulationError):
            network_from_json("{nope")

    def test_empty_hosts_rejected(self):
        with pytest.raises(SimulationError):
            network_from_json('{"hosts": [], "links": []}')

    def test_simulates(self):
        import numpy as np
        from repro.baselines import KascadeSim, SimSetup
        net = network_from_json(DOC)
        setup = SimSetup(network=net, head="a1", receivers=("a2", "b1"),
                         size=1e8, include_startup=False)
        result = KascadeSim().run(setup)
        assert len(result.completed) == 2


class TestRoundtrip:
    def test_builder_roundtrips(self):
        original = build_fat_tree(9, hosts_per_switch=3,
                                  disk=DiskSpec(write_bw=80e6))
        text = network_to_json(original)
        restored = network_from_json(text)
        assert set(restored.hosts) == set(original.hosts)
        assert restored.switches == original.switches
        # Same number of undirected links.
        assert len(restored.links) == len(original.links)
        # Routes agree.
        assert (
            [l.dst for l in restored.route("node-1", "node-9")]
            == [l.dst for l in original.route("node-1", "node-9")]
        )
        assert restored.host("node-2").disk.write_bw == 80e6

    def test_json_is_valid(self):
        doc = json.loads(network_to_json(build_fat_tree(4)))
        assert doc["name"].startswith("fattree")

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "topo.json"
        path.write_text(DOC)
        net = load_network(str(path))
        assert "a1" in net.hosts


class TestCliIntegration:
    def test_compare_with_topology_file(self, tmp_path, capsys):
        from repro.cli.kascade_sim import main as sim_main
        path = tmp_path / "topo.json"
        path.write_text(network_to_json(build_fat_tree(13)))
        rc = sim_main([
            "compare", "--clients", "12", "--size", "100MB",
            "--topology-file", str(path), "--methods", "Kascade",
            "--no-startup",
        ])
        assert rc == 0
        assert "12/12" in capsys.readouterr().out
